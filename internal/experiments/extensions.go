package experiments

import (
	"fmt"
	"math/rand"

	"crowdsky/internal/core"
	"crowdsky/internal/crowd"
	"crowdsky/internal/dataset"
	"crowdsky/internal/metrics"
	"crowdsky/internal/skyline"
	"crowdsky/internal/voting"
)

// This file adds extension experiments beyond the paper's figures,
// exercising the optional features Section 6.1 mentions without evaluating
// (round-robin multi-attribute questioning), the fixed-budget setting of
// the compared work [12], and the tournament/bitonic sorting trade-off of
// Section 3. They are registered as "ext-*" ids in cmd/experiments.

// ExtRoundRobin measures the question savings of the round-robin strategy
// for multiple crowd attributes (Section 6.1: "It is possible to use a
// round-robin strategy for multiple crowd attributes to reduce unnecessary
// questions as they become incomparable in AC, but it is not applied to
// our evaluation"). We apply it: questions versus |AC| with and without
// the strategy, full pruning, perfect crowd.
func ExtRoundRobin(cfg Config) (*Figure, error) {
	cfg = cfg.withDefaults()
	plain := Series{Name: "CrowdSky"}
	rr := Series{Name: "CrowdSky+RoundRobin"}
	for dc := 1; dc <= 3; dc++ {
		gen := dataset.GenerateConfig{N: cfg.scaled(4000), KnownDims: 4, CrowdDims: dc, Distribution: dataset.Independent}
		var qPlain, qRR float64
		for run := 0; run < cfg.Runs; run++ {
			d := dataset.MustGenerate(gen, rand.New(rand.NewSource(cfg.Seed+int64(run))))
			qPlain += float64(core.CrowdSky(d, perfectPlatform(d), core.AllPruning()).Questions)
			opts := core.AllPruning()
			opts.RoundRobinAC = true
			qRR += float64(core.CrowdSky(d, perfectPlatform(d), opts).Questions)
		}
		plain.X = append(plain.X, float64(dc))
		plain.Y = append(plain.Y, qPlain/float64(cfg.Runs))
		rr.X = append(rr.X, float64(dc))
		rr.Y = append(rr.Y, qRR/float64(cfg.Runs))
		cfg.progressf("ext-roundrobin: |AC|=%d done (%.0f vs %.0f questions)\n", dc, plain.Y[dc-1], rr.Y[dc-1])
	}
	return &Figure{
		ID:     "ext-roundrobin",
		Title:  "round-robin multi-attribute questioning (IND, full pruning)",
		XLabel: "|AC|",
		YLabel: "questions (avg of " + fmt.Sprint(cfg.Runs) + " runs)",
		Series: []Series{plain, rr},
	}, nil
}

// ExtBudget traces accuracy against a question budget: the fixed-budget
// setting of Lofi et al. [12] served by CrowdSky's optimistic readout
// (Options.MaxQuestions). Precision climbs with budget while recall stays
// at 1 under a perfect crowd, because the optimistic readout never loses a
// true skyline tuple.
func ExtBudget(cfg Config) (*Figure, error) {
	cfg = cfg.withDefaults()
	gen := dataset.GenerateConfig{N: cfg.scaled(2000), KnownDims: 4, CrowdDims: 1, Distribution: dataset.Independent}
	precision := Series{Name: "precision"}
	recall := Series{Name: "recall"}
	fractions := []float64{0.1, 0.25, 0.5, 0.75, 1.0}
	for _, frac := range fractions {
		var ps, rs float64
		for run := 0; run < cfg.Runs; run++ {
			d := dataset.MustGenerate(gen, rand.New(rand.NewSource(cfg.Seed+int64(run))))
			full := core.CrowdSky(d, perfectPlatform(d), core.AllPruning())
			budget := int(frac * float64(full.Questions))
			if budget < 1 {
				budget = 1
			}
			opts := core.AllPruning()
			opts.MaxQuestions = budget
			res := core.CrowdSky(d, perfectPlatform(d), opts)
			p, r := metrics.PrecisionRecall(res.Skyline, core.Oracle(d), skyline.KnownSkyline(d))
			ps += p
			rs += r
		}
		precision.X = append(precision.X, frac)
		precision.Y = append(precision.Y, ps/float64(cfg.Runs))
		recall.X = append(recall.X, frac)
		recall.Y = append(recall.Y, rs/float64(cfg.Runs))
		cfg.progressf("ext-budget: fraction %.2f done\n", frac)
	}
	return &Figure{
		ID:     "ext-budget",
		Title:  "accuracy under a question budget (optimistic readout, perfect crowd)",
		XLabel: "budget as fraction of the full run",
		YLabel: "precision/recall (avg of " + fmt.Sprint(cfg.Runs) + " runs)",
		Series: []Series{precision, recall},
	}, nil
}

// ExtSorters contrasts the two crowd-powered sorting baselines of
// Section 3: tournament sort (fewest comparisons) against the bitonic
// network (fewest rounds), on the same datasets.
func ExtSorters(cfg Config) (*Figure, error) {
	cfg = cfg.withDefaults()
	tq := Series{Name: "tournament questions"}
	tr := Series{Name: "tournament rounds"}
	bq := Series{Name: "bitonic questions"}
	br := Series{Name: "bitonic rounds"}
	for _, n := range []int{500, 1000, 2000} {
		sn := cfg.scaled(n)
		gen := dataset.GenerateConfig{N: sn, KnownDims: 2, CrowdDims: 1, Distribution: dataset.Independent}
		var tqs, trs, bqs, brs float64
		for run := 0; run < cfg.Runs; run++ {
			d := dataset.MustGenerate(gen, rand.New(rand.NewSource(cfg.Seed+int64(run))))
			rt := core.Baseline(d, perfectPlatform(d), core.TournamentSort, nil)
			rb := core.Baseline(d, perfectPlatform(d), core.BitonicSort, nil)
			tqs += float64(rt.Questions)
			trs += float64(rt.Rounds)
			bqs += float64(rb.Questions)
			brs += float64(rb.Rounds)
		}
		x := float64(sn)
		for _, s := range []*Series{&tq, &tr, &bq, &br} {
			s.X = append(s.X, x)
		}
		tq.Y = append(tq.Y, tqs/float64(cfg.Runs))
		tr.Y = append(tr.Y, trs/float64(cfg.Runs))
		bq.Y = append(bq.Y, bqs/float64(cfg.Runs))
		br.Y = append(br.Y, brs/float64(cfg.Runs))
		cfg.progressf("ext-sorters: n=%d done\n", sn)
	}
	return &Figure{
		ID:     "ext-sorters",
		Title:  "crowd-powered sorting baselines: cost vs latency",
		XLabel: "cardinality",
		YLabel: "questions / rounds (avg of " + fmt.Sprint(cfg.Runs) + " runs)",
		Series: []Series{tq, tr, bq, br},
	}, nil
}

// ExtScreening measures the agreement-based worker screening (the
// programmatic AMT "Masters" filter, crowd.Quality) on pools with a
// growing spammer fraction: accuracy with and without screening at equal
// ω. The paper took screening as given ("we only permitted Masters
// workers", Section 6.2); this experiment shows what it buys.
func ExtScreening(cfg Config) (*Figure, error) {
	cfg = cfg.withDefaults()
	plain := Series{Name: "no screening"}
	screened := Series{Name: "screening"}
	gen := dataset.GenerateConfig{N: cfg.scaled(800), KnownDims: 4, CrowdDims: 1, Distribution: dataset.Independent}
	for _, spamFrac := range []float64{0.0, 0.2, 0.4} {
		var plainF1, screenedF1 float64
		for run := 0; run < cfg.Runs; run++ {
			seed := cfg.Seed + int64(run)
			d := dataset.MustGenerate(gen, rand.New(rand.NewSource(seed)))
			want := core.Oracle(d)
			known := skyline.KnownSkyline(d)
			measure := func(screen bool) float64 {
				rng := rand.New(rand.NewSource(seed*31 + 11))
				pool, err := crowd.NewPool(crowd.PoolConfig{
					Size: 120, Reliability: 0.9, SpammerFraction: spamFrac,
				}, rng)
				if err != nil {
					panic(err) // static config
				}
				pf := crowd.NewSimulated(crowd.DatasetTruth{Data: d}, pool, rng)
				if screen {
					pf.Quality = crowd.NewQuality()
				}
				opts := core.AllPruning()
				opts.Voting = voting.Static{Omega: DefaultOmega}
				res := core.CrowdSky(d, pf, opts)
				p, r := metrics.PrecisionRecall(res.Skyline, want, known)
				return metrics.F1(p, r)
			}
			plainF1 += measure(false)
			screenedF1 += measure(true)
		}
		plain.X = append(plain.X, spamFrac)
		plain.Y = append(plain.Y, plainF1/float64(cfg.Runs))
		screened.X = append(screened.X, spamFrac)
		screened.Y = append(screened.Y, screenedF1/float64(cfg.Runs))
		cfg.progressf("ext-screening: spam %.1f done (%.3f vs %.3f F1)\n",
			spamFrac, plain.Y[len(plain.Y)-1], screened.Y[len(screened.Y)-1])
	}
	return &Figure{
		ID:     "ext-screening",
		Title:  "agreement-based worker screening under spam (F1, ω=5)",
		XLabel: "spammer fraction",
		YLabel: "F1 of the crowdsourced skyline (avg of " + fmt.Sprint(cfg.Runs) + " runs)",
		Series: []Series{plain, screened},
	}, nil
}

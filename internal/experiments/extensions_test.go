package experiments

import "testing"

func TestExtRoundRobin(t *testing.T) {
	cfg := Config{Runs: 2, Seed: 3, Scale: 0.05}
	fig, err := ExtRoundRobin(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plain := findSeries(t, fig, "CrowdSky")
	rr := findSeries(t, fig, "CrowdSky+RoundRobin")
	// At |AC| = 1 the strategy is a no-op.
	if plain.Y[0] != rr.Y[0] {
		t.Errorf("|AC|=1: round-robin changed questions: %.0f vs %.0f", plain.Y[0], rr.Y[0])
	}
	// At |AC| = 3 it saves questions.
	last := len(plain.Y) - 1
	if rr.Y[last] >= plain.Y[last] {
		t.Errorf("|AC|=3: round-robin %.0f >= plain %.0f questions", rr.Y[last], plain.Y[last])
	}
}

func TestExtBudget(t *testing.T) {
	cfg := Config{Runs: 2, Seed: 5, Scale: 0.05}
	fig, err := ExtBudget(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prec := findSeries(t, fig, "precision")
	rec := findSeries(t, fig, "recall")
	// Recall stays perfect under the optimistic readout with a perfect
	// crowd; precision reaches 1 at full budget and is weakly below 1
	// before.
	for i, r := range rec.Y {
		if r != 1 {
			t.Errorf("recall at fraction %.2f = %.3f, want 1", rec.X[i], r)
		}
	}
	last := len(prec.Y) - 1
	if prec.Y[last] != 1 {
		t.Errorf("precision at full budget = %.3f, want 1", prec.Y[last])
	}
	if prec.Y[0] > prec.Y[last] {
		t.Errorf("precision fell with budget: %v", prec.Y)
	}
}

func TestExtSorters(t *testing.T) {
	cfg := Config{Runs: 1, Seed: 7, Scale: 0.1}
	fig, err := ExtSorters(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tq := findSeries(t, fig, "tournament questions")
	tr := findSeries(t, fig, "tournament rounds")
	bq := findSeries(t, fig, "bitonic questions")
	br := findSeries(t, fig, "bitonic rounds")
	for i := range tq.Y {
		if bq.Y[i] <= tq.Y[i] {
			t.Errorf("point %d: bitonic questions %.0f <= tournament %.0f", i, bq.Y[i], tq.Y[i])
		}
		if br.Y[i] >= tr.Y[i] {
			t.Errorf("point %d: bitonic rounds %.0f >= tournament %.0f", i, br.Y[i], tr.Y[i])
		}
	}
}

func TestExtScreening(t *testing.T) {
	cfg := Config{Runs: 2, Seed: 9, Scale: 0.1}
	fig, err := ExtScreening(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plain := findSeries(t, fig, "no screening")
	screened := findSeries(t, fig, "screening")
	// At heavy spam, screening must help.
	last := len(plain.Y) - 1
	if screened.Y[last] < plain.Y[last] {
		t.Errorf("screening F1 %.3f below unscreened %.3f at heavy spam",
			screened.Y[last], plain.Y[last])
	}
}

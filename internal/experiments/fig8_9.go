package experiments

import (
	"fmt"
	"math/rand"

	"crowdsky/internal/core"
	"crowdsky/internal/dataset"
)

// roundMethods are the four curves of Figures 8 and 9 (latency).
var roundMethods = []struct {
	name string
	run  func(d *dataset.Dataset) int
}{
	{"Baseline", func(d *dataset.Dataset) int {
		return core.Baseline(d, perfectPlatform(d), core.TournamentSort, nil).Rounds
	}},
	{"Serial", func(d *dataset.Dataset) int {
		return core.CrowdSky(d, perfectPlatform(d), core.AllPruning()).Rounds
	}},
	{"ParallelDSet", func(d *dataset.Dataset) int {
		return core.ParallelDSet(d, perfectPlatform(d), core.AllPruning()).Rounds
	}},
	{"ParallelSL", func(d *dataset.Dataset) int {
		return core.ParallelSL(d, perfectPlatform(d), core.AllPruning()).Rounds
	}},
}

func roundSweep(cfg Config, xs []float64, configs []dataset.GenerateConfig, figID string) []Series {
	series := make([]Series, len(roundMethods))
	for mi, m := range roundMethods {
		series[mi] = Series{Name: m.name, X: xs}
	}
	for pi, gen := range configs {
		for mi, m := range roundMethods {
			total := 0.0
			for run := 0; run < cfg.Runs; run++ {
				rng := rand.New(rand.NewSource(cfg.Seed + int64(run)))
				d := dataset.MustGenerate(gen, rng)
				total += float64(m.run(d))
			}
			series[mi].Y = append(series[mi].Y, total/float64(cfg.Runs))
			cfg.progressf("fig %s: %s at point %d/%d done (avg %.0f rounds)\n",
				figID, m.name, pi+1, len(configs), series[mi].Y[pi])
		}
	}
	return series
}

// roundsFigure regenerates one panel of Figure 8 (rounds vs cardinality) or
// Figure 9 (rounds vs |AK|); panel "a" is IND, "b" is ANT.
func roundsFigure(cfg Config, fig string, panel string) (*Figure, error) {
	cfg = cfg.withDefaults()
	var dist dataset.Distribution
	switch panel {
	case "a":
		dist = dataset.Independent
	case "b":
		dist = dataset.AntiCorrelated
	default:
		return nil, fmt.Errorf("experiments: unknown panel %q (want a or b)", panel)
	}
	var xs []float64
	var configs []dataset.GenerateConfig
	var xlabel string
	switch fig {
	case "8":
		xlabel = "cardinality"
		for _, n := range []int{2000, 4000, 6000, 8000, 10000} {
			sn := cfg.scaled(n)
			xs = append(xs, float64(sn))
			configs = append(configs, dataset.GenerateConfig{N: sn, KnownDims: 4, CrowdDims: 1, Distribution: dist})
		}
	case "9":
		xlabel = "|AK|"
		for dk := 2; dk <= 5; dk++ {
			xs = append(xs, float64(dk))
			configs = append(configs, dataset.GenerateConfig{N: cfg.scaled(4000), KnownDims: dk, CrowdDims: 1, Distribution: dist})
		}
	default:
		return nil, fmt.Errorf("experiments: unknown rounds figure %q (want 8 or 9)", fig)
	}
	id := fig + panel
	return &Figure{
		ID:     id,
		Title:  fmt.Sprintf("number of rounds over %s distribution, varying %s", dist, xlabel),
		XLabel: xlabel,
		YLabel: "rounds (avg of " + fmt.Sprint(cfg.Runs) + " runs, log-scaled in the paper)",
		Series: roundSweep(cfg, xs, configs, id),
	}, nil
}

// Fig8 regenerates Figure 8 (rounds vs cardinality); panel "a" = IND,
// "b" = ANT.
func Fig8(cfg Config, panel string) (*Figure, error) { return roundsFigure(cfg, "8", panel) }

// Fig9 regenerates Figure 9 (rounds vs |AK|); panel "a" = IND, "b" = ANT.
func Fig9(cfg Config, panel string) (*Figure, error) { return roundsFigure(cfg, "9", panel) }

package experiments

import (
	"fmt"
	"sort"

	"crowdsky/internal/core"
	"crowdsky/internal/dataset"
	"crowdsky/internal/metrics"
	"crowdsky/internal/skyline"
	"crowdsky/internal/voting"
)

// RealQuery is one of the three real-life queries of Section 6.2.
type RealQuery struct {
	ID   string // "Q1", "Q2", "Q3"
	Name string
	Data func() *dataset.Dataset
}

// RealQueries lists Q1 (rectangles), Q2 (movies) and Q3 (MLB pitchers).
var RealQueries = []RealQuery{
	{"Q1", "rectangles (width/height known, area crowdsourced)", dataset.Rectangles},
	{"Q2", "IMDb-style movies (box office/year known, rating crowdsourced)", dataset.Movies},
	{"Q3", "MLB pitchers (wins/SO/ERA known, value crowdsourced)", dataset.MLBPitchers},
}

// workerReliability is the simulated stand-in for AMT Masters workers in
// the real-life experiments: the Masters qualification filters spam, so
// individual reliability is high.
const workerReliability = 0.9

// Fig12 regenerates Figure 12. Panel "a" compares the monetary cost of
// Baseline and CrowdSky on the three queries under the paper's AMT cost
// model ($0.02 per HIT assignment, 5 questions per HIT, ω = 5); panel "b"
// compares the number of rounds of Baseline, ParallelDSet and ParallelSL.
func Fig12(cfg Config, panel string) (*Figure, error) {
	cfg = cfg.withDefaults()
	switch panel {
	case "a":
		return fig12Cost(cfg)
	case "b":
		return fig12Rounds(cfg)
	}
	return nil, fmt.Errorf("experiments: unknown panel %q (want a=cost or b=rounds)", panel)
}

func fig12Cost(cfg Config) (*Figure, error) {
	omega := voting.Static{Omega: DefaultOmega}
	series := []Series{{Name: "Baseline"}, {Name: "CrowdSky"}}
	for qi, q := range RealQueries {
		x := float64(qi + 1)
		var base, cs []float64
		for run := 0; run < cfg.Runs; run++ {
			seed := cfg.Seed + int64(run)
			d := q.Data()
			base = append(base, core.Baseline(d, noisyPlatform(d, workerReliability, seed), core.TournamentSort, omega).Cost)
			d = q.Data()
			opts := core.AllPruning()
			opts.Voting = omega
			cs = append(cs, core.CrowdSky(d, noisyPlatform(d, workerReliability, seed), opts).Cost)
		}
		series[0].X = append(series[0].X, x)
		series[0].Y = append(series[0].Y, metrics.Summarize(base).Mean)
		series[1].X = append(series[1].X, x)
		series[1].Y = append(series[1].Y, metrics.Summarize(cs).Mean)
		cfg.progressf("fig 12a: %s done (baseline $%.2f, crowdsky $%.2f)\n",
			q.ID, series[0].Y[qi], series[1].Y[qi])
	}
	return &Figure{
		ID:     "12a",
		Title:  "monetary cost on real-life queries ($0.02/HIT-assignment, ω=5)",
		XLabel: "query (1=Q1 rectangles, 2=Q2 movies, 3=Q3 MLB)",
		YLabel: "monetary cost ($, avg of " + fmt.Sprint(cfg.Runs) + " runs)",
		Series: series,
	}, nil
}

func fig12Rounds(cfg Config) (*Figure, error) {
	omega := voting.Static{Omega: DefaultOmega}
	methods := []struct {
		name string
		run  func(d *dataset.Dataset, seed int64) int
	}{
		{"Baseline", func(d *dataset.Dataset, seed int64) int {
			return core.Baseline(d, noisyPlatform(d, workerReliability, seed), core.TournamentSort, omega).Rounds
		}},
		{"ParallelDSet", func(d *dataset.Dataset, seed int64) int {
			opts := core.AllPruning()
			opts.Voting = omega
			return core.ParallelDSet(d, noisyPlatform(d, workerReliability, seed), opts).Rounds
		}},
		{"ParallelSL", func(d *dataset.Dataset, seed int64) int {
			opts := core.AllPruning()
			opts.Voting = omega
			return core.ParallelSL(d, noisyPlatform(d, workerReliability, seed), opts).Rounds
		}},
	}
	series := make([]Series, len(methods))
	for mi, m := range methods {
		series[mi] = Series{Name: m.name}
		for qi, q := range RealQueries {
			var vals []float64
			for run := 0; run < cfg.Runs; run++ {
				seed := cfg.Seed + int64(run)
				vals = append(vals, float64(m.run(q.Data(), seed)))
			}
			series[mi].X = append(series[mi].X, float64(qi+1))
			series[mi].Y = append(series[mi].Y, metrics.Summarize(vals).Mean)
			cfg.progressf("fig 12b: %s on %s done (avg %.0f rounds)\n", m.name, q.ID, series[mi].Y[qi])
		}
	}
	return &Figure{
		ID:     "12b",
		Title:  "number of rounds on real-life queries",
		XLabel: "query (1=Q1 rectangles, 2=Q2 movies, 3=Q3 MLB)",
		YLabel: "rounds (avg of " + fmt.Sprint(cfg.Runs) + " runs)",
		Series: series,
	}, nil
}

// RealAccuracyResult reports the Section 6.2 accuracy outcome of one query.
type RealAccuracyResult struct {
	Query     string
	Precision float64
	Recall    float64
	Skyline   []string // names of the crowdsourced skyline tuples
}

// RealAccuracy reproduces the accuracy discussion of Section 6.2: CrowdSky
// with static ω = 5 voting on each real-life query, graded against the
// latent ground truth. The paper reports Q1 at precision = recall = 1.0,
// Q2's skyline as five specific movies and Q3's as four Cy Young
// candidates.
func RealAccuracy(cfg Config) ([]RealAccuracyResult, error) {
	cfg = cfg.withDefaults()
	var out []RealAccuracyResult
	for _, q := range RealQueries {
		var precs, recs []float64
		var names []string
		for run := 0; run < cfg.Runs; run++ {
			seed := cfg.Seed + int64(run)
			d := q.Data()
			opts := core.AllPruning()
			opts.Voting = voting.Static{Omega: DefaultOmega}
			res := core.CrowdSky(d, noisyPlatform(d, workerReliability, seed), opts)
			prec, rec := metrics.PrecisionRecall(res.Skyline, core.Oracle(d), skyline.KnownSkyline(d))
			precs = append(precs, prec)
			recs = append(recs, rec)
			if run == 0 {
				for _, tidx := range res.Skyline {
					names = append(names, d.Name(tidx))
				}
				sort.Strings(names)
			}
		}
		out = append(out, RealAccuracyResult{
			Query:     q.ID,
			Precision: metrics.Summarize(precs).Mean,
			Recall:    metrics.Summarize(recs).Mean,
			Skyline:   names,
		})
	}
	return out, nil
}

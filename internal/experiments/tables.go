package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"crowdsky/internal/core"
	"crowdsky/internal/crowd"
	"crowdsky/internal/dataset"
	"crowdsky/internal/skyline"
)

// RenderTable1 prints the dominating sets and question sets of the Figure 1
// toy dataset (Table 1), including the Σ|DS(t)| = 26 total of Example 3.
func RenderTable1(w io.Writer) error {
	d := dataset.Toy()
	sets := skyline.NewIndex(d).DominatingSets()
	if _, err := fmt.Fprintln(w, "Table 1: dominating sets and question sets for the toy dataset (Figure 1a)"); err != nil {
		return err
	}
	total := 0
	for i := 0; i < d.N(); i++ {
		if len(sets[i]) == 0 {
			continue
		}
		total += len(sets[i])
		var qs []string
		for _, s := range sets[i] {
			qs = append(qs, fmt.Sprintf("(%s,%s)", d.Name(i), d.Name(s)))
		}
		if _, err := fmt.Fprintf(w, "  DS(%s) = {%s}   Q(%s) = {%s}\n",
			d.Name(i), joinNames(d, sets[i]), d.Name(i), strings.Join(qs, ", ")); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "  total questions Σ|DS(t)| = %d (Example 3)\n", total)
	return err
}

// RenderTable2 prints the P1 evaluation order (sorted dominating sets,
// Table 2a) and then executes the full pruning stack, printing the
// questions actually asked per tuple (the unstruck entries of Table 2b are
// further reduced by P2/P3, Figure 4a).
func RenderTable2(w io.Writer) error {
	d := dataset.Toy()
	ix := skyline.NewIndex(d)
	sets := ix.DominatingSets()
	type entry struct {
		idx  int
		size int
	}
	var entries []entry
	for i := 0; i < d.N(); i++ {
		if len(sets[i]) > 0 {
			entries = append(entries, entry{i, len(sets[i])})
		}
	}
	sort.SliceStable(entries, func(x, y int) bool { return entries[x].size < entries[y].size })
	if _, err := fmt.Fprintln(w, "Table 2a: evaluation order by ascending |DS(t)| (pruning P1)"); err != nil {
		return err
	}
	for _, e := range entries {
		if _, err := fmt.Fprintf(w, "  %s: |DS| = %d, DS = {%s}\n", d.Name(e.idx), e.size, joinNames(d, sets[e.idx])); err != nil {
			return err
		}
	}

	rec := &crowd.Recorder{Inner: crowd.NewPerfect(crowd.DatasetTruth{Data: d})}
	opts := core.AllPruning()
	opts.Index = ix
	res := core.CrowdSky(d, rec, opts)
	if _, err := fmt.Fprintln(w, "Questions asked with P1+P2+P3 (Figure 4a):"); err != nil {
		return err
	}
	for _, a := range rec.Log {
		if _, err := fmt.Fprintf(w, "  (%s,%s) -> %s\n", d.Name(a.Q.A), d.Name(a.Q.B), a.Pref); err != nil {
			return err
		}
	}
	var names []string
	for _, t := range res.Skyline {
		names = append(names, d.Name(t))
	}
	sort.Strings(names)
	_, err := fmt.Fprintf(w, "  %d questions; skyline = {%s} (Example 6)\n", res.Questions, strings.Join(names, ", "))
	return err
}

// RenderTable3 executes ParallelSL on the toy dataset and prints the
// per-round question schedule of Table 3.
func RenderTable3(w io.Writer) error {
	d := dataset.Toy()
	pf := crowd.NewPerfect(crowd.DatasetTruth{Data: d})
	rec := &crowd.Recorder{Inner: pf}
	res := core.ParallelSL(d, rec, core.AllPruning())
	if _, err := fmt.Fprintln(w, "Table 3: ParallelSL round schedule on the toy dataset"); err != nil {
		return err
	}
	at := 0
	for ri, rs := range pf.Stats().PerRound() {
		var qs []string
		for i := 0; i < rs.Questions; i++ {
			a := rec.Log[at]
			at++
			qs = append(qs, fmt.Sprintf("(%s,%s)", d.Name(a.Q.A), d.Name(a.Q.B)))
		}
		if _, err := fmt.Fprintf(w, "  round %d: %s\n", ri+1, strings.Join(qs, " ")); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "  %d questions in %d rounds (Example 8)\n", res.Questions, res.Rounds)
	return err
}

func joinNames(d *dataset.Dataset, ids []int) string {
	names := make([]string, 0, len(ids))
	for _, i := range ids {
		names = append(names, d.Name(i))
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

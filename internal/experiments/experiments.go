// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6). Each figure has a runner that executes the same
// parameter sweep the paper describes (Table 4) and returns a Figure whose
// series carry the same methods, axes and units the paper plots. The
// cmd/experiments binary renders them as text; bench_test.go at the module
// root exposes each as a testing.B benchmark.
//
// Runs are deterministic: every random choice derives from Config.Seed plus
// the run index, and results are averaged over Config.Runs runs (the paper
// averages 10).
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"

	"crowdsky/internal/crowd"
	"crowdsky/internal/dataset"
	"crowdsky/internal/voting"
)

// Config controls an experiment run.
type Config struct {
	// Runs is how many independently seeded repetitions are averaged.
	// The paper uses 10; the default used by cmd/experiments is 3.
	Runs int
	// Seed is the base random seed; run i uses Seed + i.
	Seed int64
	// Scale multiplies the paper's cardinality grid, allowing quick
	// reduced-scale regenerations (0 < Scale ≤ 1; 1 is paper scale).
	Scale float64
	// Progress, when non-nil, receives one line per completed sweep point.
	Progress io.Writer
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Runs <= 0 {
		c.Runs = 3
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
	return c
}

func (c Config) progressf(format string, args ...any) {
	if c.Progress != nil {
		fmt.Fprintf(c.Progress, format, args...)
	}
}

// scaled applies the scale factor to a paper cardinality, keeping at least
// 16 tuples.
func (c Config) scaled(n int) int {
	v := int(float64(n) * c.Scale)
	if v < 16 {
		v = 16
	}
	return v
}

// Series is one method's curve in a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is a regenerated paper figure (or table rendered as series).
type Figure struct {
	ID     string // e.g. "6a"
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Render writes the figure as an aligned text table, one row per x value
// and one column per series — the closest text analogue of the paper's
// plots.
func (f *Figure) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Figure %s: %s\n", f.ID, f.Title); err != nil {
		return err
	}
	cols := []string{f.XLabel}
	for _, s := range f.Series {
		cols = append(cols, s.Name)
	}
	rows := [][]string{cols}
	if len(f.Series) > 0 {
		for i := range f.Series[0].X {
			row := []string{trimFloat(f.Series[0].X[i])}
			for _, s := range f.Series {
				if i < len(s.Y) {
					row = append(row, trimFloat(s.Y[i]))
				} else {
					row = append(row, "-")
				}
			}
			rows = append(rows, row)
		}
	}
	widths := make([]int, len(cols))
	for _, row := range rows {
		for j, cell := range row {
			if len(cell) > widths[j] {
				widths[j] = len(cell)
			}
		}
	}
	for _, row := range rows {
		var b strings.Builder
		for j, cell := range row {
			if j > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(cell, widths[j]))
		}
		if _, err := fmt.Fprintf(w, "  %s\n", strings.TrimRight(b.String(), " ")); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "  (y-values: "+f.YLabel+")")
	return err
}

// WriteCSV writes the figure as a CSV file with an x column followed by
// one column per series — the machine-readable companion of Render for
// plotting with external tools.
func (f *Figure) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{f.XLabel}
	for _, s := range f.Series {
		header = append(header, s.Name)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	if len(f.Series) > 0 {
		for i := range f.Series[0].X {
			row := []string{strconv.FormatFloat(f.Series[0].X[i], 'g', -1, 64)}
			for _, s := range f.Series {
				if i < len(s.Y) {
					row = append(row, strconv.FormatFloat(s.Y[i], 'g', -1, 64))
				} else {
					row = append(row, "")
				}
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.3f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		s = "0"
	}
	return s
}

func pad(s string, w int) string {
	for len(s) < w {
		s = " " + s
	}
	return s
}

// perfectPlatform builds a noiseless platform for the counting experiments
// of Figures 6-9.
func perfectPlatform(d *dataset.Dataset) crowd.Platform {
	return crowd.NewPerfect(crowd.DatasetTruth{Data: d})
}

// noisyPlatform builds a majority-voted platform with worker reliability p
// (the accuracy experiments of Figures 10-11 use p = 0.8).
func noisyPlatform(d *dataset.Dataset, p float64, seed int64) *crowd.Simulated {
	rng := rand.New(rand.NewSource(seed))
	pool, err := crowd.NewPool(crowd.PoolConfig{Reliability: p}, rng)
	if err != nil {
		panic(err) // static config, cannot fail
	}
	return crowd.NewSimulated(crowd.DatasetTruth{Data: d}, pool, rng)
}

// DefaultOmega re-exports the paper's ω = 5 for callers assembling their
// own policies.
const DefaultOmega = voting.DefaultOmega

package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"crowdsky/internal/core"
	"crowdsky/internal/crowd"
	"crowdsky/internal/dataset"
	"crowdsky/internal/metrics"
	"crowdsky/internal/skyline"
	"crowdsky/internal/voting"
)

// UnarySigma is the per-worker noise of the simulated unary questions
// (Section 6.1 simulates [12] by sampling "from the normal distribution of
// [the] actual value" without quoting a spread; EXPERIMENTS.md documents
// this calibration, chosen so unary accuracy lands between Baseline and
// CrowdSky as in Figure 11).
const UnarySigma = 0.15

// DynamicPolicy returns the paper's tuned dynamic-voting policy
// (Section 6.1): "the initial 30% questions are assigned ω+2, and the last
// 30% questions are assigned ω−2". It is budget-neutral against static
// voting; see EXPERIMENTS.md for the measured recall/precision trade.
func DynamicPolicy(_ *dataset.Dataset, omega int) voting.Policy {
	return voting.NewAnnealed(omega)
}

// SmartPolicy returns the context-aware extension of dynamic voting: early
// questions and very-high-importance questions (freq(u,v) in the top 5% of
// the candidate distribution) get ω+2 workers, and checks with backup
// dominators pending get ω−2. It dominates static voting on both precision
// and recall at roughly 10-20% more worker budget (EXPERIMENTS.md).
func SmartPolicy(d *dataset.Dataset, omega int) voting.Policy {
	return SmartPolicyIndexed(skyline.NewIndex(d), omega)
}

// SmartPolicyIndexed is SmartPolicy calibrated from a prebuilt dominance
// index, so callers that already pay for the index (the accuracy sweeps)
// do not rebuild the quadratic machine part per policy.
func SmartPolicyIndexed(ix *skyline.Index, omega int) voting.Policy {
	freqs := candidateFreqs(ix)
	return voting.NewSmart(omega, percentileInt(freqs, 0.95))
}

// candidateFreqs collects the importance values freq(u,v) of the questions
// CrowdSky may ask: the dominating-set questions plus (capped) probing
// pairs.
func candidateFreqs(ix *skyline.Index) []int {
	sets := ix.DominatingSets()
	fc := ix.FreqCounter()
	var freqs []int
	const probeCap = 32 // bound the quadratic probe enumeration per tuple
	for t, ds := range sets {
		for _, s := range ds {
			freqs = append(freqs, fc.Freq(s, t))
		}
		count := 0
		for i := 0; i < len(ds) && count < probeCap; i++ {
			for j := i + 1; j < len(ds) && count < probeCap; j++ {
				freqs = append(freqs, fc.Freq(ds[i], ds[j]))
				count++
			}
		}
	}
	return freqs
}

// percentileInt returns the q-quantile of vals (0 when empty).
func percentileInt(vals []int, q float64) int {
	if len(vals) == 0 {
		return 0
	}
	sorted := append([]int(nil), vals...)
	sort.Ints(sorted)
	idx := int(q * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// accuracyMethod runs one method on one noisy dataset instance; ix is the
// shared dominance index over d (pass it on via core.Options.Index).
type accuracyMethod struct {
	name string
	run  func(d *dataset.Dataset, ix *skyline.Index, seed int64) []int
}

func accuracySweep(cfg Config, methods []accuracyMethod, metric string, figID string) []Series {
	cardinalities := []int{200, 400, 600, 800, 1000}
	series := make([]Series, len(methods))
	var xs []float64
	for _, n := range cardinalities {
		xs = append(xs, float64(cfg.scaled(n)))
	}
	for mi, m := range methods {
		series[mi] = Series{Name: m.name, X: xs}
	}
	for pi, n := range cardinalities {
		sn := cfg.scaled(n)
		gen := dataset.GenerateConfig{N: sn, KnownDims: 4, CrowdDims: 1, Distribution: dataset.Independent}
		vals := make([][]float64, len(methods))
		for run := 0; run < cfg.Runs; run++ {
			// Every method sees the same dataset instance, so one index
			// serves all of them plus the ground-truth and known-skyline
			// grading.
			seed := cfg.Seed + int64(run)
			d := dataset.MustGenerate(gen, rand.New(rand.NewSource(seed)))
			ix := skyline.NewIndex(d)
			want := ix.OracleSkyline()
			known := ix.KnownSkyline()
			for mi, m := range methods {
				got := m.run(d, ix, seed*1000+int64(mi))
				prec, rec := metrics.PrecisionRecall(got, want, known)
				if metric == "precision" {
					vals[mi] = append(vals[mi], prec)
				} else {
					vals[mi] = append(vals[mi], rec)
				}
			}
		}
		for mi, m := range methods {
			series[mi].Y = append(series[mi].Y, metrics.Summarize(vals[mi]).Mean)
			cfg.progressf("fig %s: %s at point %d/%d done (%s %.3f)\n",
				figID, m.name, pi+1, len(cardinalities), metric, series[mi].Y[pi])
		}
	}
	return series
}

// Fig10 regenerates Figure 10: static versus dynamic majority voting in
// CrowdSky over the independent distribution, with ω = 5 and worker
// reliability p = 0.8. Panel "a" plots precision, "b" recall.
func Fig10(cfg Config, panel string) (*Figure, error) {
	cfg = cfg.withDefaults()
	metric, err := panelMetric(panel)
	if err != nil {
		return nil, err
	}
	const p = 0.8
	methods := []accuracyMethod{
		{"StaticVoting", func(d *dataset.Dataset, ix *skyline.Index, seed int64) []int {
			pf := noisyPlatform(d, p, seed)
			opts := core.AllPruning()
			opts.Voting = voting.Static{Omega: DefaultOmega}
			opts.Index = ix
			return core.CrowdSky(d, pf, opts).Skyline
		}},
		{"DynamicVoting", func(d *dataset.Dataset, ix *skyline.Index, seed int64) []int {
			pf := noisyPlatform(d, p, seed)
			opts := core.AllPruning()
			opts.Voting = DynamicPolicy(d, DefaultOmega)
			opts.Index = ix
			return core.CrowdSky(d, pf, opts).Skyline
		}},
		{"SmartVoting", func(d *dataset.Dataset, ix *skyline.Index, seed int64) []int {
			pf := noisyPlatform(d, p, seed)
			opts := core.AllPruning()
			opts.Voting = SmartPolicyIndexed(ix, DefaultOmega)
			opts.Index = ix
			return core.CrowdSky(d, pf, opts).Skyline
		}},
	}
	return &Figure{
		ID:     "10" + panel,
		Title:  "accuracy of static vs dynamic voting (IND, ω=5, p=0.8)",
		XLabel: "cardinality",
		YLabel: metric + " (avg of " + fmt.Sprint(cfg.Runs) + " runs)",
		Series: accuracySweep(cfg, methods, metric, "10"+panel),
	}, nil
}

// Fig11 regenerates Figure 11: CrowdSky against the sort-based Baseline
// and the unary-question method of [12], all under noisy workers with
// p = 0.8 and comparable total worker budgets: CrowdSky spends ~6 worker
// answers per tuple (≈1.3 questions × ω≈5), Unary spends 5 per tuple, and
// Baseline — which asks roughly log₂ n questions per tuple — gets a single
// worker per question, which already exceeds both. Spreading the budget
// thin is exactly why "the total order of tuples in Baseline is less
// effective for identifying a correct skyline" (Section 6.1). Panel "a"
// plots precision, "b" recall.
func Fig11(cfg Config, panel string) (*Figure, error) {
	cfg = cfg.withDefaults()
	metric, err := panelMetric(panel)
	if err != nil {
		return nil, err
	}
	const p = 0.8
	methods := []accuracyMethod{
		{"Baseline", func(d *dataset.Dataset, _ *skyline.Index, seed int64) []int {
			pf := noisyPlatform(d, p, seed)
			return core.Baseline(d, pf, core.TournamentSort, voting.Static{Omega: 1}).Skyline
		}},
		{"Unary", func(d *dataset.Dataset, _ *skyline.Index, seed int64) []int {
			up := crowd.NewSimulatedUnary(crowd.DatasetTruth{Data: d}, UnarySigma, rand.New(rand.NewSource(seed)))
			return core.Unary(d, up, DefaultOmega).Skyline
		}},
		{"CrowdSky", func(d *dataset.Dataset, ix *skyline.Index, seed int64) []int {
			pf := noisyPlatform(d, p, seed)
			opts := core.AllPruning()
			opts.Voting = SmartPolicyIndexed(ix, DefaultOmega)
			opts.Index = ix
			return core.CrowdSky(d, pf, opts).Skyline
		}},
	}
	return &Figure{
		ID:     "11" + panel,
		Title:  "accuracy of CrowdSky vs Baseline and Unary [12] (IND, noisy crowd)",
		XLabel: "cardinality",
		YLabel: metric + " (avg of " + fmt.Sprint(cfg.Runs) + " runs)",
		Series: accuracySweep(cfg, methods, metric, "11"+panel),
	}, nil
}

func panelMetric(panel string) (string, error) {
	switch panel {
	case "a":
		return "precision", nil
	case "b":
		return "recall", nil
	}
	return "", fmt.Errorf("experiments: unknown panel %q (want a=precision or b=recall)", panel)
}

package experiments

import (
	"fmt"
	"math/rand"

	"crowdsky/internal/core"
	"crowdsky/internal/dataset"
	"crowdsky/internal/metrics"
)

// questionMethods are the five curves of Figures 6 and 7.
var questionMethods = []struct {
	name string
	run  func(d *dataset.Dataset) int
}{
	{"Baseline", func(d *dataset.Dataset) int {
		return core.Baseline(d, perfectPlatform(d), core.TournamentSort, nil).Questions
	}},
	{"DSet", func(d *dataset.Dataset) int {
		return core.CrowdSky(d, perfectPlatform(d), core.Options{}).Questions
	}},
	{"P1", func(d *dataset.Dataset) int {
		return core.CrowdSky(d, perfectPlatform(d), core.Options{P1: true}).Questions
	}},
	{"P1+P2", func(d *dataset.Dataset) int {
		return core.CrowdSky(d, perfectPlatform(d), core.Options{P1: true, P2: true}).Questions
	}},
	{"P1+P2+P3", func(d *dataset.Dataset) int {
		return core.CrowdSky(d, perfectPlatform(d), core.AllPruning()).Questions
	}},
}

// questionSweep runs every question-count method over a list of dataset
// configurations and returns one series per method with the given x values.
func questionSweep(cfg Config, xs []float64, configs []dataset.GenerateConfig, figID string) []Series {
	series := make([]Series, len(questionMethods))
	for mi, m := range questionMethods {
		series[mi] = Series{Name: m.name, X: xs}
	}
	for pi, gen := range configs {
		for mi, m := range questionMethods {
			total := 0.0
			for run := 0; run < cfg.Runs; run++ {
				rng := rand.New(rand.NewSource(cfg.Seed + int64(run)))
				d := dataset.MustGenerate(gen, rng)
				total += float64(m.run(d))
			}
			series[mi].Y = append(series[mi].Y, total/float64(cfg.Runs))
			cfg.progressf("fig %s: %s at point %d/%d done (avg %.0f questions)\n",
				figID, m.name, pi+1, len(configs), series[mi].Y[pi])
		}
	}
	return series
}

// questionFigure regenerates one panel of Figure 6 (IND) or 7 (ANT).
// variant selects the sweep: "a" varies cardinality, "b" varies |AK|,
// "c" varies |AC| (Table 4).
func questionFigure(cfg Config, dist dataset.Distribution, variant string) (*Figure, error) {
	cfg = cfg.withDefaults()
	figNum := "6"
	if dist == dataset.AntiCorrelated {
		figNum = "7"
	}
	id := figNum + variant
	var xs []float64
	var configs []dataset.GenerateConfig
	var xlabel string
	switch variant {
	case "a":
		xlabel = "cardinality"
		for _, n := range []int{2000, 4000, 6000, 8000, 10000} {
			sn := cfg.scaled(n)
			xs = append(xs, float64(sn))
			configs = append(configs, dataset.GenerateConfig{N: sn, KnownDims: 4, CrowdDims: 1, Distribution: dist})
		}
	case "b":
		xlabel = "|AK|"
		for dk := 2; dk <= 5; dk++ {
			xs = append(xs, float64(dk))
			configs = append(configs, dataset.GenerateConfig{N: cfg.scaled(4000), KnownDims: dk, CrowdDims: 1, Distribution: dist})
		}
	case "c":
		xlabel = "|AC|"
		for dc := 1; dc <= 3; dc++ {
			xs = append(xs, float64(dc))
			configs = append(configs, dataset.GenerateConfig{N: cfg.scaled(4000), KnownDims: 4, CrowdDims: dc, Distribution: dist})
		}
	default:
		return nil, fmt.Errorf("experiments: unknown variant %q (want a, b or c)", variant)
	}
	return &Figure{
		ID:     id,
		Title:  fmt.Sprintf("number of questions over %s distribution, varying %s", dist, xlabel),
		XLabel: xlabel,
		YLabel: "questions (avg of " + fmt.Sprint(cfg.Runs) + " runs)",
		Series: questionSweep(cfg, xs, configs, id),
	}, nil
}

// Fig6 regenerates Figure 6 (questions, independent distribution).
func Fig6(cfg Config, variant string) (*Figure, error) {
	return questionFigure(cfg, dataset.Independent, variant)
}

// Fig7 regenerates Figure 7 (questions, anti-correlated distribution).
func Fig7(cfg Config, variant string) (*Figure, error) {
	return questionFigure(cfg, dataset.AntiCorrelated, variant)
}

// sanitySkylineCheck re-runs the full-pruning configuration on a fresh
// dataset and verifies the result against the oracle; used by tests to keep
// the sweep harness honest.
func sanitySkylineCheck(gen dataset.GenerateConfig, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	d := dataset.MustGenerate(gen, rng)
	res := core.CrowdSky(d, perfectPlatform(d), core.AllPruning())
	if !metrics.SameSet(res.Skyline, core.Oracle(d)) {
		return fmt.Errorf("experiments: skyline mismatch on %+v seed %d", gen, seed)
	}
	return nil
}

package experiments

import (
	"bytes"
	"strings"
	"testing"

	"crowdsky/internal/dataset"
	"crowdsky/internal/voting"
)

// tinyCfg keeps unit tests fast: one run at 1% of paper scale.
func tinyCfg() Config { return Config{Runs: 1, Seed: 1, Scale: 0.01} }

func findSeries(t *testing.T, fig *Figure, name string) Series {
	t.Helper()
	for _, s := range fig.Series {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("figure %s has no series %q", fig.ID, name)
	return Series{}
}

func TestFig6Shape(t *testing.T) {
	fig, err := Fig6(tinyCfg(), "a")
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 5 {
		t.Fatalf("series count = %d, want 5", len(fig.Series))
	}
	base := findSeries(t, fig, "Baseline")
	full := findSeries(t, fig, "P1+P2+P3")
	for i := range base.Y {
		if full.Y[i] >= base.Y[i] {
			t.Errorf("point %d: full pruning %.0f >= baseline %.0f questions", i, full.Y[i], base.Y[i])
		}
	}
	// Questions grow with cardinality for every method.
	for _, s := range fig.Series {
		if s.Y[len(s.Y)-1] <= s.Y[0] {
			t.Errorf("%s: questions did not grow with cardinality: %v", s.Name, s.Y)
		}
	}
}

func TestFig6Variants(t *testing.T) {
	for _, v := range []string{"b", "c"} {
		fig, err := Fig6(tinyCfg(), v)
		if err != nil {
			t.Fatal(err)
		}
		if len(fig.Series) != 5 || len(fig.Series[0].Y) == 0 {
			t.Errorf("variant %s malformed", v)
		}
	}
	if _, err := Fig6(tinyCfg(), "z"); err == nil {
		t.Errorf("bad variant accepted")
	}
}

func TestFig7QuestionsRiseWithCrowdDims(t *testing.T) {
	fig, err := Fig7(tinyCfg(), "c")
	if err != nil {
		t.Fatal(err)
	}
	// Figures 6c/7c: questions increase with |AC| for all methods.
	for _, s := range fig.Series {
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] < s.Y[i-1] {
				t.Errorf("%s: questions fell from %.0f to %.0f as |AC| grew", s.Name, s.Y[i-1], s.Y[i])
			}
		}
	}
}

func TestFig8Shape(t *testing.T) {
	for _, panel := range []string{"a", "b"} {
		fig, err := Fig8(tinyCfg(), panel)
		if err != nil {
			t.Fatal(err)
		}
		serial := findSeries(t, fig, "Serial")
		pd := findSeries(t, fig, "ParallelDSet")
		psl := findSeries(t, fig, "ParallelSL")
		for i := range serial.Y {
			if pd.Y[i] > serial.Y[i] {
				t.Errorf("panel %s point %d: ParallelDSet %.0f > Serial %.0f rounds", panel, i, pd.Y[i], serial.Y[i])
			}
			if psl.Y[i] > pd.Y[i] {
				t.Errorf("panel %s point %d: ParallelSL %.0f > ParallelDSet %.0f rounds", panel, i, psl.Y[i], pd.Y[i])
			}
		}
	}
	if _, err := Fig8(tinyCfg(), "q"); err == nil {
		t.Errorf("bad panel accepted")
	}
}

func TestFig9Shape(t *testing.T) {
	fig, err := Fig9(tinyCfg(), "a")
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 || len(fig.Series[0].Y) != 4 {
		t.Fatalf("figure 9 malformed: %+v", fig)
	}
}

func TestFig10DynamicBeatsStaticOnAverage(t *testing.T) {
	cfg := Config{Runs: 3, Seed: 7, Scale: 0.25}
	recFig, err := Fig10(cfg, "b")
	if err != nil {
		t.Fatal(err)
	}
	sum := func(s Series) float64 {
		total := 0.0
		for _, v := range s.Y {
			total += v
		}
		return total
	}
	staticRec := sum(findSeries(t, recFig, "StaticVoting"))
	dynamicRec := sum(findSeries(t, recFig, "DynamicVoting"))
	smartRec := sum(findSeries(t, recFig, "SmartVoting"))
	// Figure 10 recall ordering: dynamic and smart beat static on average.
	if dynamicRec < staticRec {
		t.Errorf("dynamic voting average recall %.3f below static %.3f", dynamicRec, staticRec)
	}
	if smartRec < staticRec {
		t.Errorf("smart voting average recall %.3f below static %.3f", smartRec, staticRec)
	}
	precFig, err := Fig10(cfg, "a")
	if err != nil {
		t.Fatal(err)
	}
	staticPrec := sum(findSeries(t, precFig, "StaticVoting"))
	smartPrec := sum(findSeries(t, precFig, "SmartVoting"))
	// SmartVoting also holds precision (small tolerance at reduced scale).
	if smartPrec < staticPrec-0.05*float64(len(precFig.Series[0].Y)) {
		t.Errorf("smart voting average precision %.3f well below static %.3f", smartPrec, staticPrec)
	}
}

func TestFig11Ordering(t *testing.T) {
	cfg := Config{Runs: 3, Seed: 3, Scale: 0.25}
	fig, err := Fig11(cfg, "a")
	if err != nil {
		t.Fatal(err)
	}
	base := findSeries(t, fig, "Baseline")
	unary := findSeries(t, fig, "Unary")
	cs := findSeries(t, fig, "CrowdSky")
	var bs, us, css float64
	for i := range base.Y {
		bs += base.Y[i]
		us += unary.Y[i]
		css += cs.Y[i]
	}
	// Figure 11 ordering on average: CrowdSky > Unary > Baseline (small
	// tolerance between the top two at this reduced scale).
	if css < us-0.05*float64(len(base.Y)) || us < bs {
		t.Errorf("precision ordering violated: baseline %.3f, unary %.3f, crowdsky %.3f", bs, us, css)
	}
}

func TestFig12CostAndRounds(t *testing.T) {
	cfg := Config{Runs: 1, Seed: 5}
	costFig, err := Fig12(cfg, "a")
	if err != nil {
		t.Fatal(err)
	}
	base := findSeries(t, costFig, "Baseline")
	cs := findSeries(t, costFig, "CrowdSky")
	for i := range base.Y {
		if cs.Y[i] >= base.Y[i] {
			t.Errorf("Q%d: CrowdSky cost $%.2f >= baseline $%.2f", i+1, cs.Y[i], base.Y[i])
		}
	}
	roundsFig, err := Fig12(cfg, "b")
	if err != nil {
		t.Fatal(err)
	}
	rb := findSeries(t, roundsFig, "Baseline")
	psl := findSeries(t, roundsFig, "ParallelSL")
	for i := range rb.Y {
		if psl.Y[i] >= rb.Y[i] {
			t.Errorf("Q%d: ParallelSL rounds %.0f >= baseline %.0f", i+1, psl.Y[i], rb.Y[i])
		}
	}
	if _, err := Fig12(cfg, "x"); err == nil {
		t.Errorf("bad panel accepted")
	}
}

func TestRealAccuracyQ1Perfectible(t *testing.T) {
	results, err := RealAccuracy(Config{Runs: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d, want 3", len(results))
	}
	// Q1's crowd attribute has exact ground truth on a total chain; with
	// majority voting the paper reports precision = recall = 1.0.
	q1 := results[0]
	if q1.Precision < 0.99 || q1.Recall < 0.99 {
		t.Errorf("Q1 accuracy = %.2f/%.2f, want 1.0/1.0", q1.Precision, q1.Recall)
	}
	// Q3's skyline should be the Cy Young candidates most of the time.
	q3 := results[2]
	found := 0
	for _, name := range q3.Skyline {
		switch name {
		case "Clayton Kershaw", "Max Scherzer", "Yu Darvish", "Bartolo Colon":
			found++
		}
	}
	if found < 3 {
		t.Errorf("Q3 skyline %v misses the Cy Young candidates", q3.Skyline)
	}
}

func TestTablesRender(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderTable1(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Σ|DS(t)| = 26") {
		t.Errorf("table 1 total missing:\n%s", buf.String())
	}
	buf.Reset()
	if err := RenderTable2(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "12 questions") {
		t.Errorf("table 2 question count missing:\n%s", buf.String())
	}
	buf.Reset()
	if err := RenderTable3(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "12 questions in 6 rounds") {
		t.Errorf("table 3 summary missing:\n%s", buf.String())
	}
}

func TestRegistryRunsEverything(t *testing.T) {
	if testing.Short() {
		t.Skip("registry sweep is slow; skipped with -short")
	}
	cfg := tinyCfg()
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			var buf bytes.Buffer
			if err := Registry[id](cfg, &buf); err != nil {
				t.Fatalf("runner %s: %v", id, err)
			}
			if buf.Len() == 0 {
				t.Errorf("runner %s produced no output", id)
			}
		})
	}
	if len(IDs()) != len(Registry) {
		t.Errorf("IDs() incomplete")
	}
}

func TestFigureRender(t *testing.T) {
	fig := &Figure{
		ID: "x", Title: "test", XLabel: "n", YLabel: "y",
		Series: []Series{{Name: "m", X: []float64{1, 2}, Y: []float64{3.5, 4}}},
	}
	var buf bytes.Buffer
	if err := fig.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure x", "3.5", "m"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestSanityCheckHelper(t *testing.T) {
	gen := dataset.GenerateConfig{N: 30, KnownDims: 2, CrowdDims: 1, Distribution: dataset.Independent}
	if err := sanitySkylineCheck(gen, 1); err != nil {
		t.Fatal(err)
	}
}

func TestDynamicPolicySpread(t *testing.T) {
	d := dataset.Toy()
	p := DynamicPolicy(d, 5)
	pp, ok := p.(voting.ProgressPolicy)
	if !ok {
		t.Fatalf("dynamic policy is not progress-aware")
	}
	if pp.WorkersAt(0.1, 0) <= pp.WorkersAt(0.9, 0) {
		t.Errorf("dynamic policy does not favor early questions")
	}
	sp := SmartPolicy(d, 5)
	cp, ok := sp.(voting.ContextPolicy)
	if !ok {
		t.Fatalf("smart policy is not context-aware")
	}
	last := cp.WorkersFor(voting.Context{Progress: 0.5, Freq: 0, Backup: 0})
	backed := cp.WorkersFor(voting.Context{Progress: 0.5, Freq: 0, Backup: 2})
	if backed >= last {
		t.Errorf("smart policy does not discount recoverable checks: %d vs %d", backed, last)
	}
}

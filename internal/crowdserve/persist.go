package crowdserve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"syscall"

	"crowdsky/internal/crowd"
)

// Marketplace persistence: crowd rounds take minutes to hours, so the
// daemon must survive restarts without losing collected judgments (the
// requester-side counterpart is package journal). Snapshot captures the
// full server state as JSON; Restore rebuilds it. Leases are deliberately
// not persisted — on restart every in-flight assignment returns to the
// open queue, which at worst re-asks a question that was answered but not
// submitted.

// snapshot is the wire form of the server state.
type snapshot struct {
	NextRoundID int64            `json:"next_round_id"`
	NextAssign  int64            `json:"next_assign"`
	Judgments   int              `json:"judgments"`
	Requeues    int              `json:"lease_requeues,omitempty"`
	PerWorker   map[string]int   `json:"judgments_by_worker,omitempty"`
	Idempotency map[string]int64 `json:"idempotency,omitempty"`
	Rounds      []roundSnapshot  `json:"rounds"`
	Open        []assignSnap     `json:"open"`
}

type roundSnapshot struct {
	ID        int64             `json:"id"`
	Questions []QuestionJSON    `json:"questions"`
	Votes     [][]string        `json:"votes"`
	Voters    []map[string]bool `json:"voters"`
	Needed    []int             `json:"needed"`
	Remaining int               `json:"remaining"`
}

type assignSnap struct {
	ID      int64 `json:"id"`
	RoundID int64 `json:"round_id"`
	QIndex  int   `json:"q_index"`
}

// Snapshot serializes the marketplace state (excluding leases) to w.
func (s *Server) Snapshot(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reapExpiredLocked()
	snap := snapshot{
		NextRoundID: s.nextRoundID,
		NextAssign:  s.nextAssign,
		Judgments:   s.judgments,
		Requeues:    s.requeues,
	}
	if len(s.perWorker) > 0 {
		snap.PerWorker = make(map[string]int, len(s.perWorker))
		for id, n := range s.perWorker {
			snap.PerWorker[id] = n
		}
	}
	// The idempotency cache must survive restarts: a client retrying a
	// submission across a server crash must still get the original round.
	// (JSON object keys marshal sorted, so this stays byte-stable.)
	if len(s.idem) > 0 {
		snap.Idempotency = make(map[string]int64, len(s.idem))
		for k, id := range s.idem {
			snap.Idempotency[k] = id
		}
	}
	// Iterate rounds in ascending id order: snapshots must be byte-stable
	// for identical state (the detrange contract), so backups can be
	// diffed and tests can compare files.
	roundIDs := make([]int64, 0, len(s.rounds))
	for id := range s.rounds {
		roundIDs = append(roundIDs, id)
	}
	sort.Slice(roundIDs, func(i, j int) bool { return roundIDs[i] < roundIDs[j] })
	for _, id := range roundIDs {
		rd := s.rounds[id]
		rs := roundSnapshot{
			ID:        rd.id,
			Questions: rd.questions,
			Voters:    rd.voters,
			Needed:    rd.needed,
			Remaining: rd.remaining,
		}
		for _, votes := range rd.votes {
			var out []string
			for _, v := range votes {
				out = append(out, v.String())
			}
			rs.Votes = append(rs.Votes, out)
		}
		snap.Rounds = append(snap.Rounds, rs)
	}
	// Open queue plus currently leased assignments (leases are dropped).
	// Leased assignments are appended in ascending id order for the same
	// byte-stability; the queue keeps its FIFO order.
	for _, a := range s.queue {
		snap.Open = append(snap.Open, assignSnap{ID: a.id, RoundID: a.roundID, QIndex: a.qIndex})
	}
	leased := make([]*assignment, 0, len(s.leased))
	for _, a := range s.leased {
		if !a.done {
			leased = append(leased, a)
		}
	}
	sort.Slice(leased, func(i, j int) bool { return leased[i].id < leased[j].id })
	for _, a := range leased {
		snap.Open = append(snap.Open, assignSnap{ID: a.id, RoundID: a.roundID, QIndex: a.qIndex})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(snap)
}

// Restore replaces the server state with a snapshot produced by Snapshot.
func (s *Server) Restore(r io.Reader) error {
	var snap snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("crowdserve: decoding snapshot: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextRoundID = snap.NextRoundID
	s.nextAssign = snap.NextAssign
	s.judgments = snap.Judgments
	s.requeues = snap.Requeues
	s.perWorker = make(map[string]int, len(snap.PerWorker))
	for id, n := range snap.PerWorker {
		s.perWorker[id] = n
	}
	s.idem = make(map[string]int64, len(snap.Idempotency))
	for k, id := range snap.Idempotency {
		s.idem[k] = id
	}
	s.rounds = make(map[int64]*round, len(snap.Rounds))
	s.queue = nil
	s.leased = make(map[int64]*assignment)
	for _, rs := range snap.Rounds {
		rd := &round{
			id:        rs.ID,
			questions: rs.Questions,
			voters:    rs.Voters,
			needed:    rs.Needed,
			remaining: rs.Remaining,
			votes:     make([][]crowd.Preference, len(rs.Questions)),
		}
		if rd.voters == nil {
			rd.voters = make([]map[string]bool, len(rs.Questions))
		}
		for i := range rd.voters {
			if rd.voters[i] == nil {
				rd.voters[i] = make(map[string]bool)
			}
		}
		for i, votes := range rs.Votes {
			if i >= len(rd.votes) {
				return fmt.Errorf("crowdserve: snapshot round %d has too many vote lists", rs.ID)
			}
			for _, v := range votes {
				pref, err := parsePref(v)
				if err != nil {
					return err
				}
				rd.votes[i] = append(rd.votes[i], pref)
			}
		}
		s.rounds[rs.ID] = rd
	}
	// Restored rounds have no live span context or trace ID (the
	// requester's trace did not survive the restart); spans and exemplars
	// simply resume absent. The queue-wait clock restarts at the restore,
	// which undercounts waits spanning the downtime but never fabricates
	// them.
	now := s.now()
	for _, a := range snap.Open {
		rd, ok := s.rounds[a.RoundID]
		if !ok || a.QIndex < 0 || a.QIndex >= len(rd.questions) {
			return fmt.Errorf("crowdserve: snapshot assignment %d references missing round/question", a.ID)
		}
		s.queue = append(s.queue, &assignment{
			id:         a.ID,
			roundID:    a.RoundID,
			qIndex:     a.QIndex,
			question:   rd.questions[a.QIndex],
			enqueuedAt: now,
		})
	}
	return nil
}

// SaveFile writes a snapshot crash-safely: the bytes go to a temp file,
// are fsynced to stable storage, and only then atomically renamed over
// the destination (followed by a directory sync so the rename itself is
// durable). A crash at any point leaves either the old snapshot or the
// new one — never a torn mix. Every step reports its error — a silently
// half-written snapshot would lose paid crowd judgments on the next
// restart.
func (s *Server) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	err = s.Snapshot(f)
	if err == nil {
		// Force the snapshot bytes to disk before the rename makes them
		// visible: rename-before-flush can publish an empty file on crash.
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		if rerr := os.Remove(tmp); rerr != nil {
			err = errors.Join(err, rerr)
		}
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a just-renamed file survives power loss.
// Filesystems that reject directory fsync (some network mounts) degrade
// to the rename's own guarantees rather than failing the save.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP) {
		return nil
	}
	return err
}

// LoadFile restores state from a snapshot file; a missing file is not an
// error (fresh start).
func (s *Server) LoadFile(path string) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	err = s.Restore(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

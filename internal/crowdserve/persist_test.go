package crowdserve

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
)

// TestSnapshotRestoreMidRound: judgments collected before a restart
// survive it; the open slots are re-served and the round completes with
// the pre-restart votes counted.
func TestSnapshotRestoreMidRound(t *testing.T) {
	srv, ts := newTestServer(t)

	resp := postJSON(t, ts.URL+"/api/rounds", map[string]any{
		"questions": []QuestionJSON{{A: 0, B: 1, Attr: 0, Workers: 3}},
	})
	resp.Body.Close()

	// Two of three judgments land before the "crash".
	for _, worker := range []string{"w1", "w2"} {
		r, err := http.Get(ts.URL + "/api/work?worker=" + worker)
		if err != nil {
			t.Fatal(err)
		}
		job := decode[workItem](t, r)
		resp := postJSON(t, ts.URL+"/api/answers", map[string]any{
			"assignment_id": job.AssignmentID, "worker": worker, "pref": "first",
		})
		resp.Body.Close()
	}
	// A third worker holds a lease at crash time; the lease must not
	// survive.
	r, err := http.Get(ts.URL + "/api/work?worker=w3")
	if err != nil {
		t.Fatal(err)
	}
	leased := decode[workItem](t, r)

	var snap bytes.Buffer
	if err := srv.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}

	// "Restart": fresh server restored from the snapshot.
	srv2 := NewServer()
	if err := srv2.Restore(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()

	// The leased slot is open again; w3's stale lease is void.
	resp = postJSON(t, ts2.URL+"/api/answers", map[string]any{
		"assignment_id": leased.AssignmentID, "worker": "w3", "pref": "second",
	})
	if resp.StatusCode == http.StatusOK {
		t.Errorf("stale lease accepted after restore")
	}
	resp.Body.Close()

	r, err = http.Get(ts2.URL + "/api/work?worker=w4")
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusOK {
		t.Fatalf("restored server has no open work: %s", r.Status)
	}
	job := decode[workItem](t, r)
	resp = postJSON(t, ts2.URL+"/api/answers", map[string]any{
		"assignment_id": job.AssignmentID, "worker": "w4", "pref": "first",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("answer after restore rejected: %s", resp.Status)
	}
	resp.Body.Close()

	// The round is complete with the two pre-crash votes plus one new one.
	r, err = http.Get(ts2.URL + "/api/rounds/1")
	if err != nil {
		t.Fatal(err)
	}
	final := decode[struct {
		Done    bool         `json:"done"`
		Answers []AnswerJSON `json:"answers"`
	}](t, r)
	if !final.Done || len(final.Answers) != 1 || final.Answers[0].Pref != "first" {
		t.Errorf("restored round outcome wrong: %+v", final)
	}
}

// TestSnapshotDoubleVotePreventionSurvives: a worker who answered before
// the restart cannot grab another slot of the same question after it.
func TestSnapshotDoubleVotePreventionSurvives(t *testing.T) {
	srv, ts := newTestServer(t)
	resp := postJSON(t, ts.URL+"/api/rounds", map[string]any{
		"questions": []QuestionJSON{{A: 0, B: 1, Attr: 0, Workers: 2}},
	})
	resp.Body.Close()
	r, err := http.Get(ts.URL + "/api/work?worker=w1")
	if err != nil {
		t.Fatal(err)
	}
	job := decode[workItem](t, r)
	resp = postJSON(t, ts.URL+"/api/answers", map[string]any{
		"assignment_id": job.AssignmentID, "worker": "w1", "pref": "first",
	})
	resp.Body.Close()

	var snap bytes.Buffer
	if err := srv.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	srv2 := NewServer()
	if err := srv2.Restore(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()

	r, err = http.Get(ts2.URL + "/api/work?worker=w1")
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusNoContent {
		t.Errorf("w1 offered a second slot of an answered question after restore: %s", r.Status)
	}
	r.Body.Close()
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")

	srv := NewServer()
	// Missing file is a fresh start.
	if err := srv.LoadFile(path); err != nil {
		t.Fatalf("missing snapshot errored: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp := postJSON(t, ts.URL+"/api/rounds", map[string]any{
		"questions": []QuestionJSON{{A: 3, B: 4, Attr: 1, Workers: 1}},
	})
	resp.Body.Close()
	if err := srv.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	srv2 := NewServer()
	if err := srv2.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	r, err := http.Get(ts2.URL + "/api/work?worker=w")
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusOK {
		t.Fatalf("restored queue empty: %s", r.Status)
	}
	job := decode[workItem](t, r)
	if job.A != 3 || job.B != 4 || job.Attr != 1 {
		t.Errorf("restored question wrong: %+v", job)
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	srv := NewServer()
	if err := srv.Restore(strings.NewReader("not json")); err == nil {
		t.Errorf("garbage snapshot accepted")
	}
	if err := srv.Restore(strings.NewReader(`{"open":[{"id":1,"round_id":9,"q_index":0}]}`)); err == nil {
		t.Errorf("dangling assignment accepted")
	}
	if err := srv.Restore(strings.NewReader(
		`{"rounds":[{"id":1,"questions":[{"a":0,"b":1}],"votes":[["maybe"]],"needed":[1],"remaining":0}]}`)); err == nil {
		t.Errorf("unknown preference accepted")
	}
}

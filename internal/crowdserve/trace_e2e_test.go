package crowdserve

import (
	"context"
	"testing"
	"time"

	"crowdsky/internal/core"
	"crowdsky/internal/crowd"
	"crowdsky/internal/dataset"
	"crowdsky/internal/telemetry"
)

// TestCrossProcessTrace runs the full algorithm over the HTTP marketplace
// with tracing on both sides and asserts the ISSUE acceptance criterion:
// the client and the server emit spans under ONE shared trace ID
// (propagated via the traceparent header), and the root run span's
// duration matches the run_start→run_end frame.
func TestCrossProcessTrace(t *testing.T) {
	srv, ts := newTestServer(t)
	serverTrace := &telemetry.Collector{}
	srv.SetTracer(serverTrace)

	d := dataset.Toy()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	workersDone := make(chan struct{})
	go func() {
		defer close(workersDone)
		SimulateWorkers(ctx, ts.URL, WorkerConfig{
			Count:        4,
			Truth:        crowd.DatasetTruth{Data: d},
			Reliability:  1.0,
			PollInterval: 2 * time.Millisecond,
			Seed:         1,
		})
	}()

	client := NewClient(ts.URL)
	client.PollInterval = 2 * time.Millisecond
	clientTrace := &telemetry.Collector{}
	opts := core.AllPruning()
	opts.Tracer = clientTrace
	res := core.ParallelSL(d, client, opts)

	cancel()
	<-workersDone

	if res.Rounds == 0 {
		t.Fatal("run made no rounds; nothing to trace")
	}

	// One trace ID across every client-side span.
	clientSpans := clientTrace.ByType(telemetry.EventSpanEnd)
	if len(clientSpans) == 0 {
		t.Fatal("client emitted no spans")
	}
	traceID := clientSpans[0].TraceID
	names := map[string]int{}
	for _, e := range clientSpans {
		if e.TraceID != traceID {
			t.Fatalf("client span %q has trace %s, want %s", e.Name, e.TraceID, traceID)
		}
		names[e.Name]++
	}
	for _, want := range []string{"run", "round", "round_submit", "round_wait"} {
		if names[want] == 0 {
			t.Errorf("client trace missing %q span (have %v)", want, names)
		}
	}
	if names["round"] != res.Rounds {
		t.Errorf("%d round spans, want one per round (%d)", names["round"], res.Rounds)
	}

	// The server, a separate process boundary away, joined the SAME trace
	// via the traceparent header.
	// Worker polls carry no traceparent, so their http spans start fresh
	// traces — the crowd-lifecycle spans are the ones that must have
	// joined the client's trace.
	serverSpans := serverTrace.ByType(telemetry.EventSpanEnd)
	if len(serverSpans) == 0 {
		t.Fatal("server emitted no spans")
	}
	lifecycle := map[string]bool{
		"server_round": true, "lease_wait": true,
		"judgment": true, "vote_resolve": true,
	}
	srvNames := map[string]int{}
	for _, e := range serverSpans {
		if !lifecycle[e.Name] {
			continue
		}
		if e.TraceID != traceID {
			t.Fatalf("server span %q has trace %s, want the client's %s", e.Name, e.TraceID, traceID)
		}
		srvNames[e.Name]++
	}
	for _, want := range []string{"server_round", "lease_wait", "judgment", "vote_resolve"} {
		if srvNames[want] == 0 {
			t.Errorf("server trace missing %q span (have %v)", want, srvNames)
		}
	}
	if srvNames["judgment"] != res.Questions {
		t.Errorf("%d judgment spans, want one per question (%d)", srvNames["judgment"], res.Questions)
	}

	// Root run span duration matches the run_start→run_end event frame.
	events := clientTrace.Events()
	if events[0].Type != telemetry.EventRunStart {
		t.Fatalf("first event is %s, want run_start", events[0].Type)
	}
	last := events[len(events)-1]
	if last.Type != telemetry.EventRunEnd {
		t.Fatalf("last event is %s, want run_end", last.Type)
	}
	var runSpan *telemetry.Event
	for i := range clientSpans {
		if clientSpans[i].Name == "run" {
			runSpan = &clientSpans[i]
		}
	}
	if runSpan == nil {
		t.Fatal("no run span")
	}
	if runSpan.ParentID != "" {
		t.Errorf("run span has parent %s, want root", runSpan.ParentID)
	}
	frame := last.Time.Sub(events[0].Time)
	spanDur := time.Duration(runSpan.DurationMS * float64(time.Millisecond))
	if diff := (frame - spanDur).Abs(); diff > 50*time.Millisecond {
		t.Errorf("run span duration %v vs event frame %v (diff %v)", spanDur, frame, diff)
	}

	// Server-side parenting: every server_round hangs off a client-side
	// http span or directly off the propagated remote span context.
	clientIDs := map[string]bool{}
	for _, e := range clientSpans {
		clientIDs[e.SpanID] = true
	}
	starts := serverTrace.ByType(telemetry.EventSpanStart)
	serverIDs := map[string]bool{}
	for _, e := range starts {
		serverIDs[e.SpanID] = true
	}
	for _, e := range starts {
		if e.Name != "server_round" {
			continue
		}
		if e.ParentID == "" {
			t.Error("server_round span is a root; traceparent parenting lost")
		} else if !clientIDs[e.ParentID] && !serverIDs[e.ParentID] {
			t.Errorf("server_round parent %s not found on either side", e.ParentID)
		}
	}
}

package crowdserve

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"crowdsky/internal/core"
	"crowdsky/internal/crowd"
	"crowdsky/internal/dataset"
	"crowdsky/internal/faultinject"
	"crowdsky/internal/journal"
	"crowdsky/internal/metrics"
	"crowdsky/internal/telemetry"
)

// Chaos suite: full skyline sessions under injected faults. Whatever the
// network, the workers, or a crash does, two invariants must hold — the
// crowdsourced skyline equals the oracle skyline, and no answered
// (paid-for) pair is ever purchased twice.

type statsResp struct {
	Rounds    int `json:"rounds"`
	Questions int `json:"questions"`
	Judgments int `json:"judgments"`
}

func serverStats(t *testing.T, baseURL string) statsResp {
	t.Helper()
	resp, err := http.Get(baseURL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	return decode[statsResp](t, resp)
}

// TestChaosTransportFaults runs the full toy session through a transport
// that resets connections (before and after the server acts), serves
// 503s, injects latency, and truncates bodies. The client's retries plus
// idempotency keys must absorb all of it: oracle-identical skyline and
// not one duplicated question on the server's bill.
func TestChaosTransportFaults(t *testing.T) {
	d := dataset.Toy()
	_, ts := newTestServer(t)

	ctx, cancel := context.WithCancel(context.Background())
	workersDone := make(chan struct{})
	go func() {
		defer close(workersDone)
		SimulateWorkers(ctx, ts.URL, WorkerConfig{
			Count:        3,
			Truth:        crowd.DatasetTruth{Data: d},
			Reliability:  1,
			PollInterval: time.Millisecond,
			Seed:         1,
		})
	}()

	plan := faultinject.NewPlan(1234)
	client := NewClient(ts.URL)
	client.HTTPClient = &http.Client{Transport: &faultinject.Transport{
		Plan: plan,
		Config: faultinject.TransportConfig{
			PResetBefore: 0.08,
			PResetAfter:  0.08,
			P503:         0.08,
			PTruncate:    0.08,
			PLatency:     0.15,
			MaxLatency:   2 * time.Millisecond,
		},
	}}
	client.PollInterval = 2 * time.Millisecond
	client.RetryBase = time.Millisecond
	client.RetryMax = 20 * time.Millisecond
	client.MaxAttempts = 10
	reg := telemetry.NewRegistry()
	client.InstrumentMetrics(reg)
	plan.InstrumentMetrics(reg)

	res := core.ParallelSL(d, client, core.AllPruning())
	cancel()
	<-workersDone

	if want := core.Oracle(d); !metrics.SameSet(res.Skyline, want) {
		t.Errorf("skyline under transport faults = %v, want %v", res.Skyline, want)
	}
	if res.Questions != 12 {
		t.Errorf("client questions = %d, want 12", res.Questions)
	}
	// The marketplace's bill must match the client's: a broken idempotency
	// path would leave duplicate rounds (and their questions) behind.
	st := serverStats(t, ts.URL)
	if st.Questions != res.Questions || st.Rounds != res.Rounds {
		t.Errorf("server billed %d questions in %d rounds; client sent %d in %d — duplicated work",
			st.Questions, st.Rounds, res.Questions, res.Rounds)
	}
	if plan.Total() == 0 {
		t.Error("chaos run injected zero faults; the exercise proved nothing")
	}
	t.Logf("faults injected: %d across %v", plan.Total(), plan.Kinds())
}

// TestChaosWorkerFaults runs the session against a misbehaving fleet —
// no-shows, duplicate submissions, stale post-lease answers — on a short
// lease. Requeues and rejections must keep the result exact.
func TestChaosWorkerFaults(t *testing.T) {
	d := dataset.Toy()
	srv, ts := newTestServer(t)
	srv.SetLease(60 * time.Millisecond)

	plan := faultinject.NewPlan(99)
	ctx, cancel := context.WithCancel(context.Background())
	workersDone := make(chan struct{})
	go func() {
		defer close(workersDone)
		SimulateWorkers(ctx, ts.URL, WorkerConfig{
			Count:        4,
			Truth:        crowd.DatasetTruth{Data: d},
			Reliability:  1,
			PollInterval: time.Millisecond,
			Seed:         7,
			Faults: &faultinject.WorkerFaults{
				Plan:       plan,
				PNoShow:    0.2,
				PDuplicate: 0.2,
				PStale:     0.15,
				StaleDelay: 150 * time.Millisecond,
			},
		})
	}()

	client := NewClient(ts.URL)
	client.PollInterval = 2 * time.Millisecond
	res := core.ParallelSL(d, client, core.AllPruning())
	cancel()
	<-workersDone

	if want := core.Oracle(d); !metrics.SameSet(res.Skyline, want) {
		t.Errorf("skyline under worker faults = %v, want %v", res.Skyline, want)
	}
	st := serverStats(t, ts.URL)
	if st.Questions != 12 {
		t.Errorf("server questions = %d, want 12", st.Questions)
	}
	if plan.Total() == 0 {
		t.Error("no worker faults injected; raise the probabilities or the seed is degenerate")
	}
	t.Logf("worker faults injected: %d across %v", plan.Total(), plan.Kinds())
}

// TestIdempotentRoundReplay pins the server-side contract directly: the
// same Idempotency-Key posted twice yields the same round and books no
// second round, and the replay survives a snapshot/restore cycle.
func TestIdempotentRoundReplay(t *testing.T) {
	srv, ts := newTestServer(t)
	post := func(key string) int64 {
		t.Helper()
		body := bytes.NewReader([]byte(`{"questions":[{"a":0,"b":1,"attr":0,"workers":1}]}`))
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/api/rounds", body)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("Idempotency-Key", key)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("status = %s", resp.Status)
		}
		return decode[struct {
			RoundID int64 `json:"round_id"`
		}](t, resp).RoundID
	}

	first := post("k-1")
	if again := post("k-1"); again != first {
		t.Errorf("replayed key returned round %d, want %d", again, first)
	}
	if other := post("k-2"); other == first {
		t.Error("distinct keys shared a round")
	}
	if st := serverStats(t, ts.URL); st.Rounds != 2 {
		t.Errorf("rounds = %d, want 2 (one per distinct key)", st.Rounds)
	}
	var sb strings.Builder
	if _, err := srv.Metrics().WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "crowdserve_idempotent_replays_total 1") {
		t.Errorf("replay metric missing or wrong:\n%s", sb.String())
	}

	// The cache must survive a restart: restore into a fresh server and
	// replay the old key there.
	var snap bytes.Buffer
	if err := srv.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	srv2 := NewServer()
	if err := srv2.Restore(&snap); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	req, err := http.NewRequest(http.MethodPost, ts2.URL+"/api/rounds",
		bytes.NewReader([]byte(`{"questions":[{"a":0,"b":1,"attr":0,"workers":1}]}`)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Idempotency-Key", "k-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if got := decode[struct {
		RoundID int64 `json:"round_id"`
	}](t, resp).RoundID; got != first {
		t.Errorf("post-restart replay returned round %d, want %d", got, first)
	}
}

// TestClientRetriesTransientFailure pins the client-side retry contract:
// a POST whose first attempt dies on the wire is retried with the same
// idempotency key, so the server processes exactly one round.
func TestClientRetriesTransientFailure(t *testing.T) {
	srv, ts := newTestServer(t)
	plan := faultinject.NewPlan(5)
	tr := &faultinject.Transport{Plan: plan}

	// Deterministic single failure: fail exactly the first POST attempt
	// after the server has acted (the lost-response case), then behave.
	var posts int
	var mu sync.Mutex
	client := NewClient(ts.URL)
	client.HTTPClient = &http.Client{Transport: roundTripFunc(func(req *http.Request) (*http.Response, error) {
		if req.Method == http.MethodPost && strings.HasSuffix(req.URL.Path, "/api/rounds") {
			mu.Lock()
			posts++
			fail := posts == 1
			mu.Unlock()
			if fail {
				tr.Config = faultinject.TransportConfig{PResetAfter: 1}
			} else {
				tr.Config = faultinject.TransportConfig{}
			}
		} else {
			tr.Config = faultinject.TransportConfig{}
		}
		return tr.RoundTrip(req)
	})}
	client.RetryBase = time.Millisecond
	client.PollInterval = 2 * time.Millisecond
	reg := telemetry.NewRegistry()
	client.InstrumentMetrics(reg)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	workersDone := make(chan struct{})
	go func() {
		defer close(workersDone)
		SimulateWorkers(ctx, ts.URL, WorkerConfig{
			Count: 1, Truth: staticTruth{}, Reliability: 1,
			PollInterval: time.Millisecond, Seed: 3,
		})
	}()

	answers := client.Ask([]crowd.Request{{Q: crowd.Question{A: 0, B: 1}, Workers: 1}})
	cancel()
	<-workersDone

	if len(answers) != 1 {
		t.Fatalf("answers = %d", len(answers))
	}
	if plan.Counts()[faultinject.KindConnResetAfter] != 1 {
		t.Fatalf("expected exactly one injected reset-after, got %v", plan.Counts())
	}
	// Both attempts reached the server; the idempotency key collapsed them
	// into one round.
	st := serverStats(t, ts.URL)
	if st.Rounds != 1 || st.Questions != 1 {
		t.Errorf("server saw %d rounds / %d questions, want 1/1 — retry double-charged", st.Rounds, st.Questions)
	}
	var sb strings.Builder
	if _, err := reg.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `crowdserve_client_retries_total{cause="conn"} 1`) {
		t.Errorf("conn retry not counted:\n%s", sb.String())
	}
	var msb strings.Builder
	if _, err := srv.Metrics().WriteTo(&msb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(msb.String(), "crowdserve_idempotent_replays_total 1") {
		t.Errorf("server did not replay the retried submission:\n%s", msb.String())
	}
}

type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

// staticTruth always prefers the first tuple; enough for one question.
type staticTruth struct{}

func (staticTruth) Answer(crowd.Question) crowd.Preference { return crowd.First }
func (staticTruth) Value(i, j int) float64                 { return float64(i) }

// flakyHost serves a marketplace whose process can be "killed" and
// replaced mid-round: after restartAfter POSTed rounds it snapshots the
// current server, builds a fresh one from the snapshot (as a restarted
// daemon would from its state file), and swaps it in under the same URL.
type flakyHost struct {
	t            *testing.T
	restartAfter int
	lease        time.Duration

	mu        sync.RWMutex
	srv       *Server
	handler   http.Handler
	posts     int
	restarted bool
}

func newFlakyHost(t *testing.T, srv *Server, restartAfter int, lease time.Duration) *flakyHost {
	return &flakyHost{t: t, srv: srv, handler: srv.Handler(), restartAfter: restartAfter, lease: lease}
}

func (f *flakyHost) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mu.RLock()
	h := f.handler
	f.mu.RUnlock()
	h.ServeHTTP(w, r)
	if r.Method == http.MethodPost && r.URL.Path == "/api/rounds" {
		f.maybeRestart()
	}
}

func (f *flakyHost) maybeRestart() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.posts++
	if f.restarted || f.posts < f.restartAfter {
		return
	}
	f.restarted = true
	var snap bytes.Buffer
	if err := f.srv.Snapshot(&snap); err != nil {
		f.t.Errorf("snapshot during restart: %v", err)
		return
	}
	next := NewServer()
	next.SetLease(f.lease)
	if err := next.Restore(&snap); err != nil {
		f.t.Errorf("restore during restart: %v", err)
		return
	}
	f.srv = next
	f.handler = next.Handler()
}

// errAbort is the sentinel a simulated requester crash panics with.
var errAbort = errors.New("chaos: injected requester crash")

// abortPlatform crashes the requester after maxRounds crowd rounds.
type abortPlatform struct {
	inner     crowd.Platform
	rounds    int
	maxRounds int
}

func (a *abortPlatform) Ask(reqs []crowd.Request) []crowd.Answer {
	if len(reqs) == 0 {
		return a.inner.Ask(reqs)
	}
	a.rounds++
	if a.rounds > a.maxRounds {
		panic(errAbort)
	}
	return a.inner.Ask(reqs)
}
func (a *abortPlatform) Stats() *crowd.Stats { return a.inner.Stats() }

// askRecorder remembers every question that reached the live platform —
// i.e. every question that cost money.
type askRecorder struct {
	inner crowd.Platform
	mu    sync.Mutex
	asked []crowd.Question
}

func (r *askRecorder) Ask(reqs []crowd.Request) []crowd.Answer {
	r.mu.Lock()
	for _, q := range reqs {
		r.asked = append(r.asked, q.Q)
	}
	r.mu.Unlock()
	return r.inner.Ask(reqs)
}
func (r *askRecorder) Stats() *crowd.Stats { return r.inner.Stats() }

// TestChaosKillRestartMidRound is the full resilience story: a journaled
// requester session crashes mid-run with a torn journal write, the
// marketplace daemon itself is killed and restarted from its snapshot
// mid-round, and the resumed session must still produce the oracle
// skyline without re-purchasing any answer that survived in the journal.
func TestChaosKillRestartMidRound(t *testing.T) {
	d := dataset.Toy()
	plan := faultinject.NewPlan(2026)

	srv := NewServer()
	srv.SetLease(60 * time.Millisecond)
	// Restart the daemon right after the resumed session posts its first
	// live round (session 1 posts rounds 1..3).
	host := newFlakyHost(t, srv, 4, 60*time.Millisecond)
	ts := httptest.NewServer(host)
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	workersDone := make(chan struct{})
	go func() {
		defer close(workersDone)
		SimulateWorkers(ctx, ts.URL, WorkerConfig{
			Count:        3,
			Truth:        crowd.DatasetTruth{Data: d},
			Reliability:  1,
			PollInterval: time.Millisecond,
			Seed:         13,
		})
	}()

	newClient := func() *Client {
		c := NewClient(ts.URL)
		c.PollInterval = 2 * time.Millisecond
		c.RetryBase = time.Millisecond
		return c
	}

	// Session 1: journal through a TornWriter (the crash will tear the
	// tail), crash the requester after 3 rounds.
	var torn bytes.Buffer
	tw := &faultinject.TornWriter{W: &torn, Cutoff: 300, Plan: plan}
	p1, err := journal.NewPlatform(newClient(), nil, journal.NewWriter(tw))
	if err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if r := recover(); r != nil && r != errAbort { //nolint:errorlint // sentinel identity, not a wrapped chain
				panic(r)
			}
		}()
		core.CrowdSky(d, &abortPlatform{inner: p1, maxRounds: 3}, core.AllPruning())
		t.Fatal("session 1 finished; the abort platform never fired")
	}()
	if !tw.Torn() {
		t.Fatal("journal was not torn; raise session-1 rounds or lower the cutoff")
	}

	// Recovery: salvage the intact journal prefix, as `crowdsky -resume`
	// does after an unclean shutdown.
	recovered, st, err := journal.Recover(bytes.NewReader(torn.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) == 0 || st.Dropped == 0 {
		t.Fatalf("tear should drop a strict suffix: %d recovered, %+v", len(recovered), st)
	}
	t.Logf("recovered %d journal records (%d bytes intact, %d lines dropped)", len(recovered), st.IntactBytes, st.Dropped)

	// Session 2: resume from the recovered prefix. The live platform is
	// wrapped in a recorder so we can prove no recovered pair is re-asked;
	// the daemon restarts mid-round via the flaky host.
	rec := &askRecorder{inner: newClient()}
	var log2 bytes.Buffer
	p2, err := journal.NewPlatform(rec, recovered, journal.NewWriter(&log2))
	if err != nil {
		t.Fatal(err)
	}
	res := core.CrowdSky(d, p2, core.AllPruning())
	cancel()
	<-workersDone

	if want := core.Oracle(d); !metrics.SameSet(res.Skyline, want) {
		t.Errorf("resumed skyline = %v, want %v", res.Skyline, want)
	}
	if p2.Replayed() != len(recovered) {
		t.Errorf("replayed %d answers, want every recovered record (%d)", p2.Replayed(), len(recovered))
	}
	// No paid pair asked twice: nothing the journal preserved may appear
	// among session 2's live questions, in either orientation.
	paid := make(map[crowd.Question]bool, 2*len(recovered))
	for _, e := range recovered {
		paid[crowd.Question{A: e.A, B: e.B, Attr: e.Attr}] = true
		paid[crowd.Question{A: e.B, B: e.A, Attr: e.Attr}] = true
	}
	for _, q := range rec.asked {
		if paid[q] {
			t.Errorf("recovered pair (%d,%d,attr=%d) was purchased again", q.A, q.B, q.Attr)
		}
	}
	if !host.restarted {
		t.Error("the daemon never restarted; the mid-round kill was not exercised")
	}
	// The resumed session journaled its live answers with checksums; its
	// own journal must read back clean.
	if entries, err := journal.Read(bytes.NewReader(log2.Bytes())); err != nil || len(entries) != len(rec.asked) {
		t.Errorf("session-2 journal: %d entries, %v (asked %d live)", len(entries), err, len(rec.asked))
	}
}

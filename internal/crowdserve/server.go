// Package crowdserve is an AMT-style crowdsourcing marketplace over HTTP:
// a requester posts rounds of pair-wise questions, workers poll for
// assignments and submit judgments, and the requester collects
// majority-voted answers once every judgment is in.
//
// The paper ran its real-life experiments against Amazon Mechanical Turk;
// this package is the deployable substitute (see DESIGN.md's substitution
// table): the Server hosts the marketplace, Client implements
// crowd.Platform against it so every algorithm in this repository can run
// unchanged over the network, and SimulateWorkers drives a fleet of
// simulated workers against any server for end-to-end testing and demos.
//
// Wire protocol (JSON over HTTP):
//
//	POST /api/rounds            {questions: [{a,b,attr,workers}]} → {round_id}
//	GET  /api/rounds/{id}       → {done, answers: [{a,b,attr,pref}]}
//	GET  /api/work?worker=W     → {assignment_id, a, b, attr} or 204
//	POST /api/answers           {assignment_id, worker, pref}
//	GET  /api/stats             → {rounds, questions, judgments, open,
//	                               lease_requeues, judgments_by_worker}
//	GET  /metrics               → Prometheus text exposition
//
// pref is "first", "second" or "equal". Assignments are leased: a fetched
// assignment that is not answered within the lease duration is silently
// requeued for another worker, so stalled workers cannot wedge a round.
package crowdserve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"crowdsky/internal/crowd"
	"crowdsky/internal/telemetry"
)

// DefaultLease is how long a worker may hold an assignment before it is
// requeued.
const DefaultLease = 2 * time.Minute

// QuestionJSON is the wire form of one pair-wise question.
type QuestionJSON struct {
	A       int `json:"a"`
	B       int `json:"b"`
	Attr    int `json:"attr"`
	Workers int `json:"workers"`
}

// AnswerJSON is the wire form of an aggregated answer.
type AnswerJSON struct {
	A    int    `json:"a"`
	B    int    `json:"b"`
	Attr int    `json:"attr"`
	Pref string `json:"pref"`
}

// prefToString and back.
func prefString(p crowd.Preference) string { return p.String() }

// parsePref maps a wire preference to its enum, rejecting anything
// outside the three literals — crowd input never reaches crowd.Preference
// unvalidated.
//
// skylint:sanitizer
func parsePref(s string) (crowd.Preference, error) {
	switch s {
	case "first":
		return crowd.First, nil
	case "second":
		return crowd.Second, nil
	case "equal":
		return crowd.Equal, nil
	}
	//skylint:alloc-ok malformed-preference error path; rejected requests are not the steady state
	return 0, fmt.Errorf("crowdserve: unknown preference %q", s)
}

// cleanWorkerID validates a worker identifier from the wire before it
// keys any persistent server state (voter sets, per-worker accounting):
// non-empty, at most 128 bytes, restricted to [A-Za-z0-9._-]. The
// simulated workers ("sim-0", "sim-1", ...) and every human-assigned id
// in the fleet fit; anything else is rejected with a 400 by the caller.
//
// skylint:sanitizer
func cleanWorkerID(s string) (string, bool) {
	if s == "" || len(s) > 128 || !safeToken(s) {
		return "", false
	}
	return s, true
}

// cleanIdemKey validates an Idempotency-Key header value before it keys
// the replay map. Client-minted keys are a hex session id plus a
// sequence number ("3f..e2-17"), well inside the same token charset; the
// length cap bounds what one client can park in s.idem per entry.
//
// skylint:sanitizer
func cleanIdemKey(s string) (string, bool) {
	if s == "" || len(s) > 200 || !safeToken(s) {
		return "", false
	}
	return s, true
}

// safeToken reports whether s contains only [A-Za-z0-9._-]. It touches
// no memory beyond s, so the hot handlers can validate without
// allocating.
func safeToken(s string) bool {
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// assignment is one (question, worker slot) unit of work.
type assignment struct {
	id       int64
	roundID  int64
	qIndex   int
	question QuestionJSON

	leasedTo    string
	leaseExpiry time.Time
	done        bool

	// Lifecycle instrumentation: enqueuedAt feeds the lease-wait
	// histogram (enqueue→lease), leasedAt the judgment-latency histogram
	// (lease→answer); the spans mirror the same intervals in the round's
	// trace. Both times reset when a lapsed lease requeues the slot.
	enqueuedAt time.Time
	leasedAt   time.Time
	waitSpan   *telemetry.Span
	judgeSpan  *telemetry.Span
}

// round is one batch of questions posted by the requester.
type round struct {
	id        int64
	questions []QuestionJSON
	votes     [][]crowd.Preference // per question
	voters    []map[string]bool    // per question: workers who already voted
	needed    []int                // workers per question
	remaining int                  // unanswered assignments

	// traceID is the requester's trace (from the POST's traceparent or
	// the server's own span); it keys histogram exemplars even when
	// server-side tracing is off. span/spanCtx carry the server_round
	// span that the lease/judgment/vote spans parent under; resolved
	// latches the one-time vote_resolve span.
	traceID  string
	span     *telemetry.Span
	spanCtx  context.Context
	resolved bool
}

// Server is the marketplace state plus its HTTP handler.
type Server struct {
	mu          sync.Mutex
	nextRoundID int64                 // skylint:guardedby mu
	nextAssign  int64                 // skylint:guardedby mu
	rounds      map[int64]*round      // skylint:guardedby mu
	queue       []*assignment         // skylint:guardedby mu — open assignments in FIFO order
	leased      map[int64]*assignment // skylint:guardedby mu
	lease       time.Duration         // skylint:guardedby mu
	now         func() time.Time

	judgments int            // skylint:guardedby mu
	requeues  int            // skylint:guardedby mu — assignments requeued after a lapsed lease
	perWorker map[string]int // skylint:guardedby mu — judgments submitted per worker id

	// idem maps an Idempotency-Key to the round it created, so a client
	// retrying a POST /api/rounds whose response was lost gets the
	// original round back instead of a duplicate (and a duplicate bill).
	// Persisted in snapshots: a replayed retry must survive a server
	// restart too.
	idem map[string]int64 // skylint:guardedby mu

	// reapScratch is reused across reapExpiredLocked calls so the common
	// nothing-expired poll never allocates.
	reapScratch []*assignment // skylint:guardedby mu

	// Telemetry: the registry backs GET /metrics; the counters mirror the
	// mutex-guarded accounting above so dashboards can scrape without
	// hitting the stats endpoint.
	reg           *telemetry.Registry
	httpm         *telemetry.HTTPMetrics
	mRounds       *telemetry.Counter
	mQuestions    *telemetry.Counter
	mJudgments    *telemetry.Counter
	mRequeues     *telemetry.Counter
	mWriteErrs    *telemetry.Counter
	mIdemReplays  *telemetry.Counter
	mLeaseWait    *telemetry.Histogram
	mJudgeLatency *telemetry.Histogram
	// trace receives the marketplace's spans (server rounds, lease waits,
	// judgments, vote resolution); nil disables them. Set via SetTracer
	// before Handler.
	trace telemetry.Tracer
}

// leaseBuckets extends the default buckets into the crowd-latency range:
// human judgment and queue waits run to minutes (the paper's Q3 HITs
// averaged 93 seconds), far beyond HTTP-scale defaults.
var leaseBuckets = append(append([]float64(nil), telemetry.DefBuckets...), 30, 60, 120, 300)

// NewServer creates an empty marketplace with the default lease.
func NewServer() *Server {
	s := &Server{
		rounds:    make(map[int64]*round),
		leased:    make(map[int64]*assignment),
		lease:     DefaultLease,
		now:       time.Now,
		perWorker: make(map[string]int),
		idem:      make(map[string]int64),
		reg:       telemetry.NewRegistry(),
	}
	s.httpm = telemetry.NewHTTPMetrics(s.reg, "crowdserve")
	s.mRounds = s.reg.NewCounter("crowdserve_rounds_total", "Rounds posted by requesters.")
	s.mQuestions = s.reg.NewCounter("crowdserve_questions_total", "Questions posted across all rounds.")
	s.mJudgments = s.reg.NewCounter("crowdserve_judgments_total", "Worker judgments accepted.")
	s.mRequeues = s.reg.NewCounter("crowdserve_lease_requeues_total", "Assignments requeued after a lapsed lease.")
	s.mWriteErrs = s.reg.NewCounter("crowdserve_response_write_errors_total", "Responses that failed to encode or send (client gone, broken pipe).")
	s.mIdemReplays = s.reg.NewCounter("crowdserve_idempotent_replays_total", "Round submissions answered from the idempotency-key cache instead of creating a duplicate round.")
	s.mLeaseWait = s.reg.NewHistogram("crowdserve_lease_wait_seconds",
		"Queue wait from assignment enqueue to worker lease.", leaseBuckets...)
	s.mJudgeLatency = s.reg.NewHistogram("crowdserve_judgment_latency_seconds",
		"Worker think time from lease to accepted judgment.", leaseBuckets...)
	s.reg.NewGaugeFunc("crowdserve_open_assignments", "Assignments currently queued or leased.", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.queue) + len(s.leased))
	})
	return s
}

// Metrics returns the server's telemetry registry, for embedding the
// marketplace metrics into a larger process-wide registry page or for
// tests.
func (s *Server) Metrics() *telemetry.Registry { return s.reg }

// SetTracer enables span emission for the marketplace's round/lease/
// judgment lifecycle and for per-request HTTP server spans. Call before
// Handler and before serving traffic; typically wired to the same JSONL
// stream as the requester's `-trace` via a separate file merged by
// skytrace.
func (s *Server) SetTracer(t telemetry.Tracer) {
	s.trace = t
	s.httpm.SetTracer(t)
}

// SetLease overrides the assignment lease duration (tests use short
// leases).
func (s *Server) SetLease(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lease = d
}

// Handler returns the HTTP handler serving the marketplace API. Every
// route is instrumented with request counters and latency histograms; the
// route label is the registration pattern, not the raw path, so metric
// cardinality stays bounded.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("POST /api/rounds", s.httpm.WrapFunc("/api/rounds", s.handlePostRound))
	mux.Handle("GET /api/rounds/", s.httpm.WrapFunc("/api/rounds/{id}", s.handleGetRound))
	mux.Handle("GET /api/work", s.httpm.WrapFunc("/api/work", s.handleGetWork))
	mux.Handle("POST /api/answers", s.httpm.WrapFunc("/api/answers", s.handlePostAnswer))
	mux.Handle("GET /api/stats", s.httpm.WrapFunc("/api/stats", s.handleStats))
	mux.Handle("GET /metrics", s.reg.Handler())
	return mux
}

// writeJSON sends a JSON response. The status line is already on the wire
// when Encode runs, so an encode failure cannot change the response — but
// it must not vanish either: it means a worker or requester received a
// truncated body (client disconnect, broken pipe), which shows up as the
// crowdserve_response_write_errors_total counter for dashboards to alarm on.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.mWriteErrs.Inc()
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, msg string) {
	//skylint:alloc-ok error responses are off the steady-state path
	s.writeJSON(w, status, map[string]string{"error": msg})
}

func (s *Server) handlePostRound(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Questions []QuestionJSON `json:"questions"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	if len(body.Questions) == 0 {
		s.writeError(w, http.StatusBadRequest, "round has no questions")
		return
	}
	idemKey := ""
	if raw := r.Header.Get("Idempotency-Key"); raw != "" {
		var ok bool
		if idemKey, ok = cleanIdemKey(raw); !ok {
			s.writeError(w, http.StatusBadRequest, "invalid Idempotency-Key")
			return
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// A retried submission whose original attempt landed (but whose
	// response was lost in transit) replays the original round: same id,
	// same 201, zero new work posted — the client is never double-charged.
	if idemKey != "" {
		if id, ok := s.idem[idemKey]; ok {
			s.mIdemReplays.Inc()
			s.writeJSON(w, http.StatusCreated, map[string]int64{"round_id": id})
			return
		}
	}
	s.nextRoundID++
	rd := &round{
		id:        s.nextRoundID,
		questions: body.Questions,
		votes:     make([][]crowd.Preference, len(body.Questions)),
		voters:    make([]map[string]bool, len(body.Questions)),
		needed:    make([]int, len(body.Questions)),
	}
	// The round joins the requester's trace: the middleware already
	// extracted the traceparent header (and opened the http span) into
	// the request context, so the server_round span — and through it
	// every lease/judgment span — shares the caller's trace ID.
	rd.spanCtx, rd.span = telemetry.StartSpan(r.Context(), s.trace, "server_round")
	rd.traceID = telemetry.ActiveSpanContext(rd.spanCtx).TraceID
	rd.span.SetAttr("round_id", strconv.FormatInt(rd.id, 10))
	rd.span.SetAttr("questions", strconv.Itoa(len(body.Questions)))
	for i := range rd.voters {
		rd.voters[i] = make(map[string]bool)
	}
	now := s.now()
	for i, q := range body.Questions {
		workers := q.Workers
		if workers < 1 {
			workers = 1
		}
		rd.needed[i] = workers
		rd.remaining += workers
		// Full capacity up front: the per-judgment append in
		// handlePostAnswer must never grow on the hot serving path.
		rd.votes[i] = make([]crowd.Preference, 0, workers)
		for k := 0; k < workers; k++ {
			s.nextAssign++
			a := &assignment{
				id:         s.nextAssign,
				roundID:    rd.id,
				qIndex:     i,
				question:   q,
				enqueuedAt: now,
			}
			a.waitSpan = s.startAssignmentSpan(rd, a, "lease_wait")
			s.queue = append(s.queue, a)
		}
	}
	s.rounds[rd.id] = rd
	if idemKey != "" {
		s.idem[idemKey] = rd.id
	}
	s.mRounds.Inc()
	s.mQuestions.Add(uint64(len(body.Questions)))
	s.writeJSON(w, http.StatusCreated, map[string]int64{"round_id": rd.id})
}

// startAssignmentSpan opens a per-assignment span (lease_wait or
// judgment) under the round's span, stamped with the pair so skytrace's
// -top can rank slow questions.
func (s *Server) startAssignmentSpan(rd *round, a *assignment, name string) *telemetry.Span {
	if s.trace == nil {
		return nil
	}
	_, span := telemetry.StartSpan(rd.spanCtx, s.trace, name)
	span.SetAttr("assignment", strconv.FormatInt(a.id, 10))
	span.SetAttr("a", strconv.Itoa(a.question.A))
	span.SetAttr("b", strconv.Itoa(a.question.B))
	span.SetAttr("attr", strconv.Itoa(a.question.Attr))
	return span
}

func (s *Server) handleGetRound(w http.ResponseWriter, r *http.Request) {
	idStr := strings.TrimPrefix(r.URL.Path, "/api/rounds/")
	id, err := strconv.ParseInt(idStr, 10, 64)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid round id")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rd, ok := s.rounds[id]
	if !ok {
		s.writeError(w, http.StatusNotFound, "unknown round")
		return
	}
	type resp struct {
		Done    bool         `json:"done"`
		Answers []AnswerJSON `json:"answers,omitempty"`
	}
	if rd.remaining > 0 {
		s.writeJSON(w, http.StatusOK, resp{Done: false})
		return
	}
	// The first completed read resolves the votes; span it once so the
	// phase table can attribute voting time separately from crowd wait.
	var vspan *telemetry.Span
	if !rd.resolved {
		rd.resolved = true
		_, vspan = telemetry.StartSpan(rd.spanCtx, s.trace, "vote_resolve")
		vspan.SetAttr("questions", strconv.Itoa(len(rd.questions)))
	}
	out := resp{Done: true}
	for i, q := range rd.questions {
		out.Answers = append(out.Answers, AnswerJSON{
			A: q.A, B: q.B, Attr: q.Attr,
			Pref: prefString(crowd.MajorityVote(rd.votes[i])),
		})
	}
	vspan.End()
	s.writeJSON(w, http.StatusOK, out)
}

// handleGetWork leases the next compatible assignment to the polling
// worker. Workers poll in a loop, so this is the marketplace's hottest
// endpoint: steady-state work (lease bookkeeping, queue rotation) must
// not allocate; the per-request telemetry and the JSON response are the
// documented exceptions.
//
//skylint:hotpath serve
func (s *Server) handleGetWork(w http.ResponseWriter, r *http.Request) {
	worker, ok := cleanWorkerID(r.URL.Query().Get("worker"))
	if !ok {
		s.writeError(w, http.StatusBadRequest, "missing or invalid worker id")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reapExpiredLocked()
	for i, a := range s.queue {
		// A worker must not vote twice on one question: skip slots of
		// questions the worker already holds or already answered.
		if s.workerHasQuestionLocked(worker, a) {
			continue
		}
		now := s.now()
		a.leasedTo = worker
		a.leasedAt = now
		a.leaseExpiry = now.Add(s.lease)
		s.leased[a.id] = a
		// Shift-down delete keeps FIFO order without append's allocation
		// ambiguity (and drops the trailing pointer so the leased
		// assignment is not retained twice).
		copy(s.queue[i:], s.queue[i+1:])
		s.queue[len(s.queue)-1] = nil
		s.queue = s.queue[:len(s.queue)-1]
		rd := s.rounds[a.roundID]
		if !a.enqueuedAt.IsZero() {
			s.mLeaseWait.ObserveExemplar(now.Sub(a.enqueuedAt).Seconds(), rd.traceID)
		}
		a.waitSpan.SetAttr("worker", worker)
		a.waitSpan.End()
		a.waitSpan = nil
		a.judgeSpan = s.startAssignmentSpan(rd, a, "judgment")
		a.judgeSpan.SetAttr("worker", worker)
		//skylint:alloc-ok one response object per granted lease; the JSON encoder behind it allocates anyway
		s.writeJSON(w, http.StatusOK, map[string]any{
			"assignment_id": a.id,
			"a":             a.question.A,
			"b":             a.question.B,
			"attr":          a.question.Attr,
		})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// workerHasQuestionLocked reports whether the worker currently leases
// another slot of the same question or has already answered it.
func (s *Server) workerHasQuestionLocked(worker string, a *assignment) bool {
	if rd, ok := s.rounds[a.roundID]; ok && rd.voters[a.qIndex][worker] {
		return true
	}
	//skylint:alloc-ok the double-lease check must scan every active lease; the map stays small
	for _, l := range s.leased {
		if l.leasedTo == worker && !l.done && l.roundID == a.roundID && l.qIndex == a.qIndex {
			return true
		}
	}
	return false
}

// reapExpiredLocked requeues leased assignments whose lease lapsed.
// Expired assignments re-enter the queue in ascending id order so the
// marketplace hands out work deterministically for identical state (map
// iteration order would shuffle them).
func (s *Server) reapExpiredLocked() {
	now := s.now()
	expired := s.reapScratch[:0]
	for _, a := range s.leased { //skylint:alloc-ok map iteration is bounded by active leases; order restored by the sort below
		if !a.done && a.leaseExpiry.Before(now) {
			expired = append(expired, a) //skylint:alloc-ok grows the reused reap scratch buffer, amortized across polls
		}
	}
	s.reapScratch = expired[:0]
	sort.Slice(expired, func(i, j int) bool { return expired[i].id < expired[j].id }) //skylint:alloc-ok rare lapsed-lease path; sort closure and boxing are off the steady state
	for _, a := range expired {
		a.leasedTo = ""
		delete(s.leased, a.id)
		// Close the abandoned judgment span and restart the queue-wait
		// clock: the slot is back in line for another worker.
		a.judgeSpan.SetAttr("requeued", "true")
		a.judgeSpan.End()
		a.judgeSpan = nil
		a.enqueuedAt = now
		a.leasedAt = time.Time{}
		if rd, ok := s.rounds[a.roundID]; ok {
			a.waitSpan = s.startAssignmentSpan(rd, a, "lease_wait")
		}
		//skylint:alloc-ok requeue happens only for lapsed leases, off the steady state
		s.queue = append(s.queue, a)
		s.requeues++
		s.mRequeues.Inc()
	}
}

// handlePostAnswer accepts one worker judgment. Like handleGetWork this
// is per-judgment hot: vote recording appends into capacity reserved at
// round creation, and only telemetry and the response allocate.
//
//skylint:hotpath serve
func (s *Server) handlePostAnswer(w http.ResponseWriter, r *http.Request) {
	var body struct {
		AssignmentID int64  `json:"assignment_id"`
		Worker       string `json:"worker"`
		Pref         string `json:"pref"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		//skylint:alloc-ok malformed-request error path
		s.writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	pref, err := parsePref(body.Pref)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	worker, ok := cleanWorkerID(body.Worker)
	if !ok {
		s.writeError(w, http.StatusBadRequest, "missing or invalid worker id")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.leased[body.AssignmentID]
	if !ok || a.done {
		s.writeError(w, http.StatusConflict, "assignment not leased (expired or already answered)")
		return
	}
	if a.leasedTo != worker {
		s.writeError(w, http.StatusForbidden, "assignment leased to another worker")
		return
	}
	a.done = true
	delete(s.leased, body.AssignmentID)
	rd := s.rounds[a.roundID]
	if !a.leasedAt.IsZero() {
		s.mJudgeLatency.ObserveExemplar(s.now().Sub(a.leasedAt).Seconds(), rd.traceID)
	}
	a.judgeSpan.SetAttr("pref", body.Pref)
	a.judgeSpan.End()
	a.judgeSpan = nil
	//skylint:alloc-ok capacity for every vote is reserved at round creation; this append never grows
	rd.votes[a.qIndex] = append(rd.votes[a.qIndex], pref)
	rd.voters[a.qIndex][worker] = true
	rd.remaining--
	if rd.remaining == 0 {
		// Every judgment is in; the round's crowd part is over (the
		// requester's next poll resolves the votes).
		rd.span.End()
	}
	s.judgments++
	s.perWorker[worker]++
	s.mJudgments.Inc()
	//skylint:alloc-ok one acknowledgement object per accepted judgment
	s.writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reapExpiredLocked()
	open := len(s.queue) + len(s.leased)
	questions := 0
	for _, rd := range s.rounds {
		questions += len(rd.questions)
	}
	byWorker := make(map[string]int, len(s.perWorker))
	for id, n := range s.perWorker {
		byWorker[id] = n
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"rounds":              len(s.rounds),
		"questions":           questions,
		"judgments":           s.judgments,
		"open":                open,
		"lease_requeues":      s.requeues,
		"judgments_by_worker": byWorker,
	})
}

// Package crowdserve is an AMT-style crowdsourcing marketplace over HTTP:
// a requester posts rounds of pair-wise questions, workers poll for
// assignments and submit judgments, and the requester collects
// majority-voted answers once every judgment is in.
//
// The paper ran its real-life experiments against Amazon Mechanical Turk;
// this package is the deployable substitute (see DESIGN.md's substitution
// table): the Server hosts the marketplace, Client implements
// crowd.Platform against it so every algorithm in this repository can run
// unchanged over the network, and SimulateWorkers drives a fleet of
// simulated workers against any server for end-to-end testing and demos.
//
// Wire protocol (JSON over HTTP):
//
//	POST /api/rounds            {questions: [{a,b,attr,workers}]} → {round_id}
//	GET  /api/rounds/{id}       → {done, answers: [{a,b,attr,pref}]}
//	GET  /api/work?worker=W     → {assignment_id, a, b, attr} or 204
//	POST /api/answers           {assignment_id, worker, pref}
//	GET  /api/stats             → {rounds, questions, judgments, open}
//
// pref is "first", "second" or "equal". Assignments are leased: a fetched
// assignment that is not answered within the lease duration is silently
// requeued for another worker, so stalled workers cannot wedge a round.
package crowdserve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"crowdsky/internal/crowd"
)

// DefaultLease is how long a worker may hold an assignment before it is
// requeued.
const DefaultLease = 2 * time.Minute

// QuestionJSON is the wire form of one pair-wise question.
type QuestionJSON struct {
	A       int `json:"a"`
	B       int `json:"b"`
	Attr    int `json:"attr"`
	Workers int `json:"workers"`
}

// AnswerJSON is the wire form of an aggregated answer.
type AnswerJSON struct {
	A    int    `json:"a"`
	B    int    `json:"b"`
	Attr int    `json:"attr"`
	Pref string `json:"pref"`
}

// prefToString and back.
func prefString(p crowd.Preference) string { return p.String() }

func parsePref(s string) (crowd.Preference, error) {
	switch s {
	case "first":
		return crowd.First, nil
	case "second":
		return crowd.Second, nil
	case "equal":
		return crowd.Equal, nil
	}
	return 0, fmt.Errorf("crowdserve: unknown preference %q", s)
}

// assignment is one (question, worker slot) unit of work.
type assignment struct {
	id       int64
	roundID  int64
	qIndex   int
	question QuestionJSON

	leasedTo    string
	leaseExpiry time.Time
	done        bool
}

// round is one batch of questions posted by the requester.
type round struct {
	id        int64
	questions []QuestionJSON
	votes     [][]crowd.Preference // per question
	voters    []map[string]bool    // per question: workers who already voted
	needed    []int                // workers per question
	remaining int                  // unanswered assignments
}

// Server is the marketplace state plus its HTTP handler.
type Server struct {
	mu          sync.Mutex
	nextRoundID int64
	nextAssign  int64
	rounds      map[int64]*round
	queue       []*assignment // open assignments in FIFO order
	leased      map[int64]*assignment
	lease       time.Duration
	now         func() time.Time

	judgments int
}

// NewServer creates an empty marketplace with the default lease.
func NewServer() *Server {
	return &Server{
		rounds: make(map[int64]*round),
		leased: make(map[int64]*assignment),
		lease:  DefaultLease,
		now:    time.Now,
	}
}

// SetLease overrides the assignment lease duration (tests use short
// leases).
func (s *Server) SetLease(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lease = d
}

// Handler returns the HTTP handler serving the marketplace API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/rounds", s.handlePostRound)
	mux.HandleFunc("GET /api/rounds/", s.handleGetRound)
	mux.HandleFunc("GET /api/work", s.handleGetWork)
	mux.HandleFunc("POST /api/answers", s.handlePostAnswer)
	mux.HandleFunc("GET /api/stats", s.handleStats)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func (s *Server) handlePostRound(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Questions []QuestionJSON `json:"questions"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	if len(body.Questions) == 0 {
		writeError(w, http.StatusBadRequest, "round has no questions")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextRoundID++
	rd := &round{
		id:        s.nextRoundID,
		questions: body.Questions,
		votes:     make([][]crowd.Preference, len(body.Questions)),
		voters:    make([]map[string]bool, len(body.Questions)),
		needed:    make([]int, len(body.Questions)),
	}
	for i := range rd.voters {
		rd.voters[i] = make(map[string]bool)
	}
	for i, q := range body.Questions {
		workers := q.Workers
		if workers < 1 {
			workers = 1
		}
		rd.needed[i] = workers
		rd.remaining += workers
		for k := 0; k < workers; k++ {
			s.nextAssign++
			s.queue = append(s.queue, &assignment{
				id:       s.nextAssign,
				roundID:  rd.id,
				qIndex:   i,
				question: q,
			})
		}
	}
	s.rounds[rd.id] = rd
	writeJSON(w, http.StatusCreated, map[string]int64{"round_id": rd.id})
}

func (s *Server) handleGetRound(w http.ResponseWriter, r *http.Request) {
	idStr := strings.TrimPrefix(r.URL.Path, "/api/rounds/")
	id, err := strconv.ParseInt(idStr, 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid round id")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rd, ok := s.rounds[id]
	if !ok {
		writeError(w, http.StatusNotFound, "unknown round")
		return
	}
	type resp struct {
		Done    bool         `json:"done"`
		Answers []AnswerJSON `json:"answers,omitempty"`
	}
	if rd.remaining > 0 {
		writeJSON(w, http.StatusOK, resp{Done: false})
		return
	}
	out := resp{Done: true}
	for i, q := range rd.questions {
		out.Answers = append(out.Answers, AnswerJSON{
			A: q.A, B: q.B, Attr: q.Attr,
			Pref: prefString(crowd.MajorityVote(rd.votes[i])),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGetWork(w http.ResponseWriter, r *http.Request) {
	worker := r.URL.Query().Get("worker")
	if worker == "" {
		writeError(w, http.StatusBadRequest, "missing worker id")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reapExpiredLocked()
	for i, a := range s.queue {
		// A worker must not vote twice on one question: skip slots of
		// questions the worker already holds or already answered.
		if s.workerHasQuestionLocked(worker, a) {
			continue
		}
		a.leasedTo = worker
		a.leaseExpiry = s.now().Add(s.lease)
		s.leased[a.id] = a
		s.queue = append(s.queue[:i], s.queue[i+1:]...)
		writeJSON(w, http.StatusOK, map[string]any{
			"assignment_id": a.id,
			"a":             a.question.A,
			"b":             a.question.B,
			"attr":          a.question.Attr,
		})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// workerHasQuestionLocked reports whether the worker currently leases
// another slot of the same question or has already answered it.
func (s *Server) workerHasQuestionLocked(worker string, a *assignment) bool {
	if rd, ok := s.rounds[a.roundID]; ok && rd.voters[a.qIndex][worker] {
		return true
	}
	for _, l := range s.leased {
		if l.leasedTo == worker && !l.done && l.roundID == a.roundID && l.qIndex == a.qIndex {
			return true
		}
	}
	return false
}

// reapExpiredLocked requeues leased assignments whose lease lapsed.
func (s *Server) reapExpiredLocked() {
	now := s.now()
	for id, a := range s.leased {
		if !a.done && a.leaseExpiry.Before(now) {
			a.leasedTo = ""
			delete(s.leased, id)
			s.queue = append(s.queue, a)
		}
	}
}

func (s *Server) handlePostAnswer(w http.ResponseWriter, r *http.Request) {
	var body struct {
		AssignmentID int64  `json:"assignment_id"`
		Worker       string `json:"worker"`
		Pref         string `json:"pref"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	pref, err := parsePref(body.Pref)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.leased[body.AssignmentID]
	if !ok || a.done {
		writeError(w, http.StatusConflict, "assignment not leased (expired or already answered)")
		return
	}
	if a.leasedTo != body.Worker {
		writeError(w, http.StatusForbidden, "assignment leased to another worker")
		return
	}
	a.done = true
	delete(s.leased, body.AssignmentID)
	rd := s.rounds[a.roundID]
	rd.votes[a.qIndex] = append(rd.votes[a.qIndex], pref)
	rd.voters[a.qIndex][body.Worker] = true
	rd.remaining--
	s.judgments++
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reapExpiredLocked()
	open := len(s.queue) + len(s.leased)
	questions := 0
	for _, rd := range s.rounds {
		questions += len(rd.questions)
	}
	writeJSON(w, http.StatusOK, map[string]int{
		"rounds":    len(s.rounds),
		"questions": questions,
		"judgments": s.judgments,
		"open":      open,
	})
}

package crowdserve

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	mrand "math/rand"
	"net/http"
	"time"

	"crowdsky/internal/crowd"
	"crowdsky/internal/telemetry"
)

// Retry causes, the label values of crowdserve_client_retries_total.
const (
	// retryCausePoll is a round-status re-poll: the round simply was not
	// done yet. Each one is a backoff interval spent waiting on the crowd.
	retryCausePoll = "poll"
	// retryCauseConn is a transport-level failure (connection reset,
	// timeout) on a request that is being retried.
	retryCauseConn = "conn"
	// retryCause5xx is a retryable server status (5xx or 429).
	retryCause5xx = "http_5xx"
	// retryCauseDecode is a response that arrived but would not decode —
	// typically a truncated body on a torn connection.
	retryCauseDecode = "decode"
)

// Client implements crowd.Platform against a crowdserve marketplace: each
// Ask posts one round and polls until every judgment is in, so the
// crowd-enabled skyline algorithms run unchanged over HTTP.
//
// The client is resilient by default: every request gets a per-attempt
// timeout and is retried with capped exponential backoff plus jitter on
// transport errors, 5xx/429 statuses, and undecodable responses. Round
// submissions carry an Idempotency-Key header, so a retry of a POST whose
// response was lost lands on the same server-side round — the marketplace
// never charges twice for one logical round.
type Client struct {
	// BaseURL is the marketplace root, e.g. "http://localhost:8800".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// PollInterval is the initial delay between round-status checks;
	// defaults to 250ms. Consecutive not-done polls back off
	// exponentially (with jitter) up to MaxPollInterval.
	PollInterval time.Duration
	// MaxPollInterval caps the poll backoff; defaults to 16× PollInterval.
	MaxPollInterval time.Duration
	// RequestTimeout bounds each individual HTTP attempt; defaults to 30s.
	RequestTimeout time.Duration
	// RetryBase is the first retry backoff; defaults to 50ms. Attempt n
	// waits RetryBase<<n, capped at RetryMax, jittered.
	RetryBase time.Duration
	// RetryMax caps the retry backoff; defaults to 2s.
	RetryMax time.Duration
	// MaxAttempts bounds attempts per request (first try included);
	// defaults to 6.
	MaxAttempts int
	// Ctx, when non-nil, cancels waiting (a cancelled Ask panics with the
	// context error, since crowd.Platform has no error channel; callers
	// that need graceful cancellation should recover at the run boundary).
	// AskCtx's context takes precedence when one is supplied per round.
	Ctx context.Context

	stats crowd.Stats
	// retries counts retried work by cause; set by InstrumentMetrics.
	retries *telemetry.CounterVec
	// idemSession is the random per-client prefix of idempotency keys,
	// minted lazily on the first round submission.
	idemSession string
	// idemSeq numbers rounds within the session; all retries of one round
	// share one key, distinct rounds never do.
	idemSeq uint64
}

// NewClient returns a marketplace client for baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) ctx() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return context.Background()
}

func (c *Client) pollInterval() time.Duration {
	if c.PollInterval > 0 {
		return c.PollInterval
	}
	return 250 * time.Millisecond
}

func (c *Client) maxPollInterval() time.Duration {
	if c.MaxPollInterval > 0 {
		return c.MaxPollInterval
	}
	return 16 * c.pollInterval()
}

func (c *Client) requestTimeout() time.Duration {
	if c.RequestTimeout > 0 {
		return c.RequestTimeout
	}
	return 30 * time.Second
}

func (c *Client) retryBase() time.Duration {
	if c.RetryBase > 0 {
		return c.RetryBase
	}
	return 50 * time.Millisecond
}

func (c *Client) retryMax() time.Duration {
	if c.RetryMax > 0 {
		return c.RetryMax
	}
	return 2 * time.Second
}

func (c *Client) maxAttempts() int {
	if c.MaxAttempts > 0 {
		return c.MaxAttempts
	}
	return 6
}

// InstrumentMetrics registers the client's metric families on reg:
// crowdserve_client_retries_total counts retried work by cause — "poll"
// for round-status re-polls (crowd latency), "conn" for transport
// failures, "http_5xx" for retryable statuses, "decode" for truncated or
// garbled responses.
func (c *Client) InstrumentMetrics(reg *telemetry.Registry) {
	c.retries = reg.NewCounterVec("crowdserve_client_retries_total",
		"Client retries by cause: poll (round not done yet), conn, http_5xx, decode.", "cause")
}

func (c *Client) countRetry(cause string) {
	if c.retries != nil {
		c.retries.With(cause).Inc()
	}
}

// Ask implements crowd.Platform.
func (c *Client) Ask(reqs []crowd.Request) []crowd.Answer {
	return c.AskCtx(c.ctx(), reqs)
}

// AskCtx implements crowd.ContextPlatform: ctx cancels the round (both
// in-flight HTTP requests and the backoff sleeps — a cancelled wait
// panics, since crowd.Platform has no error channel), and the active
// trace span in ctx is propagated to the server as a traceparent header
// so the marketplace's lease/judgment spans join the run's trace.
func (c *Client) AskCtx(ctx context.Context, reqs []crowd.Request) []crowd.Answer {
	if len(reqs) == 0 {
		return nil
	}
	if ctx == nil {
		ctx = c.ctx()
	}
	c.stats.Record(reqs)

	qs := make([]QuestionJSON, len(reqs))
	for i, r := range reqs {
		qs[i] = QuestionJSON{A: r.Q.A, B: r.Q.B, Attr: r.Q.Attr, Workers: r.Workers}
	}
	sctx, submit := telemetry.StartSpan(ctx, nil, "round_submit")
	roundID, err := c.postRound(sctx, qs)
	submit.End()
	if err != nil {
		panic(fmt.Sprintf("crowdserve: posting round: %v", err))
	}

	wctx, wait := telemetry.StartSpan(ctx, nil, "round_wait")
	wait.SetAttr("round_id", fmt.Sprintf("%d", roundID))
	polls := 0
	interval := c.pollInterval()
	defer wait.End()
	for {
		done, answers, err := c.getRound(wctx, roundID)
		if err != nil {
			panic(fmt.Sprintf("crowdserve: polling round %d: %v", roundID, err))
		}
		if done {
			wait.SetAttr("polls", fmt.Sprintf("%d", polls))
			// The server answers in question order; map back onto the
			// request order (identical by construction).
			out := make([]crowd.Answer, len(reqs))
			for i, a := range answers {
				pref, err := parsePref(a.Pref)
				if err != nil {
					panic(fmt.Sprintf("crowdserve: %v", err))
				}
				out[i] = crowd.Answer{
					Q:    crowd.Question{A: a.A, B: a.B, Attr: a.Attr},
					Pref: pref,
				}
			}
			return out
		}
		// Sleep one jittered backoff interval, but wake immediately on
		// cancellation: a cancelled run must not outlive its context by a
		// poll cycle. The interval doubles per not-done poll up to
		// MaxPollInterval, so a slow crowd is not hammered with status
		// checks while a fast one is noticed promptly.
		if err := sleepCtx(ctx, jitter(interval)); err != nil {
			panic(fmt.Sprintf("crowdserve: cancelled while waiting for round %d: %v", roundID, err))
		}
		polls++
		c.countRetry(retryCausePoll)
		if interval *= 2; interval > c.maxPollInterval() {
			interval = c.maxPollInterval()
		}
	}
}

// Stats implements crowd.Platform.
func (c *Client) Stats() *crowd.Stats { return &c.stats }

// nextIdempotencyKey mints the key for one logical round submission. The
// session prefix is random per client, so two clients (or two runs of
// one process) never collide; the sequence number distinguishes rounds
// within the session.
func (c *Client) nextIdempotencyKey() string {
	if c.idemSession == "" {
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			// crypto/rand failing means the platform's randomness source is
			// broken; there is no safe fallback for a collision-free key.
			panic(fmt.Sprintf("crowdserve: minting idempotency key: %v", err))
		}
		c.idemSession = hex.EncodeToString(b[:])
	}
	c.idemSeq++
	return fmt.Sprintf("%s-%d", c.idemSession, c.idemSeq)
}

func (c *Client) postRound(ctx context.Context, qs []QuestionJSON) (int64, error) {
	body, err := json.Marshal(map[string]any{"questions": qs})
	if err != nil {
		return 0, err
	}
	var out struct {
		RoundID int64 `json:"round_id"`
	}
	// One key across every retry of this round: if the server processed an
	// attempt whose response we lost, the retry returns the same round.
	key := c.nextIdempotencyKey()
	if err := c.doJSON(ctx, http.MethodPost, c.BaseURL+"/api/rounds", body, key, http.StatusCreated, &out); err != nil {
		return 0, err
	}
	return out.RoundID, nil
}

func (c *Client) getRound(ctx context.Context, id int64) (bool, []AnswerJSON, error) {
	var out struct {
		Done    bool         `json:"done"`
		Answers []AnswerJSON `json:"answers"`
	}
	url := fmt.Sprintf("%s/api/rounds/%d", c.BaseURL, id)
	if err := c.doJSON(ctx, http.MethodGet, url, nil, "", http.StatusOK, &out); err != nil {
		return false, nil, err
	}
	return out.Done, out.Answers, nil
}

// doJSON performs one logical JSON request with retries: transport
// errors, 5xx/429 statuses, and decode failures are retried with capped
// exponential backoff and jitter up to MaxAttempts; other unexpected
// statuses are terminal. On success the body is decoded into out.
func (c *Client) doJSON(ctx context.Context, method, url string, body []byte, idemKey string, wantStatus int, out any) error {
	var lastErr error
	for attempt := 0; attempt < c.maxAttempts(); attempt++ {
		if attempt > 0 {
			if err := sleepCtx(ctx, jitter(c.backoff(attempt-1))); err != nil {
				return err
			}
		}
		err, retryable, cause := c.attemptJSON(ctx, method, url, body, idemKey, wantStatus, out)
		if err == nil {
			return nil
		}
		lastErr = err
		if !retryable {
			return err
		}
		if attempt+1 < c.maxAttempts() {
			c.countRetry(cause)
		}
	}
	return fmt.Errorf("giving up after %d attempts: %w", c.maxAttempts(), lastErr)
}

// attemptJSON is one HTTP attempt under its own timeout. It reports
// whether the failure is worth retrying and, if so, under which cause.
func (c *Client) attemptJSON(ctx context.Context, method, url string, body []byte, idemKey string, wantStatus int, out any) (err error, retryable bool, cause string) {
	actx, cancel := context.WithTimeout(ctx, c.requestTimeout())
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, url, rd)
	if err != nil {
		return err, false, ""
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if idemKey != "" {
		req.Header.Set("Idempotency-Key", idemKey)
	}
	injectTraceParent(ctx, req)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		if ctx.Err() != nil {
			// The caller's context ended; retrying would only delay the
			// cancellation the caller asked for.
			return ctx.Err(), false, ""
		}
		return err, true, retryCauseConn
	}
	defer drainClose(resp.Body)
	switch {
	case resp.StatusCode == wantStatus:
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return fmt.Errorf("decoding response: %w", err), true, retryCauseDecode
		}
		return nil, false, ""
	case resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests:
		return fmt.Errorf("retryable status %s", resp.Status), true, retryCause5xx
	default:
		return fmt.Errorf("unexpected status %s", resp.Status), false, ""
	}
}

// backoff returns the un-jittered delay before retry n (0-based):
// RetryBase<<n capped at RetryMax.
func (c *Client) backoff(n int) time.Duration {
	d := c.retryBase()
	max := c.retryMax()
	for i := 0; i < n; i++ {
		d *= 2
		if d >= max {
			return max
		}
	}
	if d > max {
		return max
	}
	return d
}

// jitter spreads a delay over [d/2, d], so synchronized clients do not
// retry in lockstep against a struggling server.
func jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	half := d / 2
	return half + time.Duration(mrand.Int63n(int64(half)+1))
}

// sleepCtx sleeps for d or until ctx is cancelled, whichever comes
// first, returning the context error on cancellation.
func sleepCtx(ctx context.Context, d time.Duration) error {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}

// injectTraceParent stamps the active span context from ctx onto req as a
// W3C traceparent header, so the server's spans join the caller's trace.
func injectTraceParent(ctx context.Context, req *http.Request) {
	if sc := telemetry.ActiveSpanContext(ctx); sc.Valid() {
		req.Header.Set(telemetry.TraceParentHeader, sc.TraceParent())
	}
}

// drainClose consumes the rest of a response body so the HTTP transport
// can reuse the connection. Failures here are unactionable — the response
// was already decoded (or rejected) by the caller, and the worst outcome
// is one lost keep-alive connection.
func drainClose(rc io.ReadCloser) {
	_, _ = io.Copy(io.Discard, rc) // skylint:ignore errdrop best-effort drain for connection reuse
	_ = rc.Close()                 // skylint:ignore errdrop read side already consumed; nothing to recover
}

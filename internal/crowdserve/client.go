package crowdserve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"crowdsky/internal/crowd"
	"crowdsky/internal/telemetry"
)

// Client implements crowd.Platform against a crowdserve marketplace: each
// Ask posts one round and polls until every judgment is in, so the
// crowd-enabled skyline algorithms run unchanged over HTTP.
type Client struct {
	// BaseURL is the marketplace root, e.g. "http://localhost:8800".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// PollInterval between round-status checks; defaults to 250ms.
	PollInterval time.Duration
	// Ctx, when non-nil, cancels waiting (a cancelled Ask panics with the
	// context error, since crowd.Platform has no error channel; callers
	// that need graceful cancellation should recover at the run boundary).
	// AskCtx's context takes precedence when one is supplied per round.
	Ctx context.Context

	stats crowd.Stats
	// retries counts round-status re-polls; set by InstrumentMetrics.
	retries *telemetry.Counter
}

// NewClient returns a marketplace client for baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) ctx() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return context.Background()
}

func (c *Client) pollInterval() time.Duration {
	if c.PollInterval > 0 {
		return c.PollInterval
	}
	return 250 * time.Millisecond
}

// InstrumentMetrics registers the client's metric families on reg:
// crowdserve_client_retries_total counts round-status re-polls (each one
// is a full poll interval the requester spent waiting on the crowd).
func (c *Client) InstrumentMetrics(reg *telemetry.Registry) {
	c.retries = reg.NewCounter("crowdserve_client_retries_total",
		"Round-status re-polls while waiting for crowd judgments.")
}

// Ask implements crowd.Platform.
func (c *Client) Ask(reqs []crowd.Request) []crowd.Answer {
	return c.AskCtx(c.ctx(), reqs)
}

// AskCtx implements crowd.ContextPlatform: ctx cancels the round (both
// in-flight HTTP requests and the poll-interval sleep — a cancelled wait
// panics, since crowd.Platform has no error channel), and the active
// trace span in ctx is propagated to the server as a traceparent header
// so the marketplace's lease/judgment spans join the run's trace.
func (c *Client) AskCtx(ctx context.Context, reqs []crowd.Request) []crowd.Answer {
	if len(reqs) == 0 {
		return nil
	}
	if ctx == nil {
		ctx = c.ctx()
	}
	c.stats.Record(reqs)

	qs := make([]QuestionJSON, len(reqs))
	for i, r := range reqs {
		qs[i] = QuestionJSON{A: r.Q.A, B: r.Q.B, Attr: r.Q.Attr, Workers: r.Workers}
	}
	sctx, submit := telemetry.StartSpan(ctx, nil, "round_submit")
	roundID, err := c.postRound(sctx, qs)
	submit.End()
	if err != nil {
		panic(fmt.Sprintf("crowdserve: posting round: %v", err))
	}

	wctx, wait := telemetry.StartSpan(ctx, nil, "round_wait")
	wait.SetAttr("round_id", fmt.Sprintf("%d", roundID))
	polls := 0
	defer wait.End()
	for {
		done, answers, err := c.getRound(wctx, roundID)
		if err != nil {
			panic(fmt.Sprintf("crowdserve: polling round %d: %v", roundID, err))
		}
		if done {
			wait.SetAttr("polls", fmt.Sprintf("%d", polls))
			// The server answers in question order; map back onto the
			// request order (identical by construction).
			out := make([]crowd.Answer, len(reqs))
			for i, a := range answers {
				pref, err := parsePref(a.Pref)
				if err != nil {
					panic(fmt.Sprintf("crowdserve: %v", err))
				}
				out[i] = crowd.Answer{
					Q:    crowd.Question{A: a.A, B: a.B, Attr: a.Attr},
					Pref: pref,
				}
			}
			return out
		}
		// Sleep one poll interval, but wake immediately on cancellation:
		// a cancelled run must not outlive its context by a poll cycle.
		timer := time.NewTimer(c.pollInterval())
		select {
		case <-ctx.Done():
			timer.Stop()
			panic(fmt.Sprintf("crowdserve: cancelled while waiting for round %d: %v", roundID, ctx.Err()))
		case <-timer.C:
		}
		polls++
		if c.retries != nil {
			c.retries.Inc()
		}
	}
}

// Stats implements crowd.Platform.
func (c *Client) Stats() *crowd.Stats { return &c.stats }

func (c *Client) postRound(ctx context.Context, qs []QuestionJSON) (int64, error) {
	body, err := json.Marshal(map[string]any{"questions": qs})
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/api/rounds", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	injectTraceParent(ctx, req)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return 0, err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusCreated {
		return 0, fmt.Errorf("unexpected status %s", resp.Status)
	}
	var out struct {
		RoundID int64 `json:"round_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, err
	}
	return out.RoundID, nil
}

func (c *Client) getRound(ctx context.Context, id int64) (bool, []AnswerJSON, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/api/rounds/%d", c.BaseURL, id), nil)
	if err != nil {
		return false, nil, err
	}
	injectTraceParent(ctx, req)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return false, nil, err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return false, nil, fmt.Errorf("unexpected status %s", resp.Status)
	}
	var out struct {
		Done    bool         `json:"done"`
		Answers []AnswerJSON `json:"answers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return false, nil, err
	}
	return out.Done, out.Answers, nil
}

// injectTraceParent stamps the active span context from ctx onto req as a
// W3C traceparent header, so the server's spans join the caller's trace.
func injectTraceParent(ctx context.Context, req *http.Request) {
	if sc := telemetry.ActiveSpanContext(ctx); sc.Valid() {
		req.Header.Set(telemetry.TraceParentHeader, sc.TraceParent())
	}
}

// drainClose consumes the rest of a response body so the HTTP transport
// can reuse the connection. Failures here are unactionable — the response
// was already decoded (or rejected) by the caller, and the worst outcome
// is one lost keep-alive connection.
func drainClose(rc io.ReadCloser) {
	_, _ = io.Copy(io.Discard, rc) // skylint:ignore errdrop best-effort drain for connection reuse
	_ = rc.Close()                 // skylint:ignore errdrop read side already consumed; nothing to recover
}

package crowdserve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"crowdsky/internal/crowd"
)

// Client implements crowd.Platform against a crowdserve marketplace: each
// Ask posts one round and polls until every judgment is in, so the
// crowd-enabled skyline algorithms run unchanged over HTTP.
type Client struct {
	// BaseURL is the marketplace root, e.g. "http://localhost:8800".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// PollInterval between round-status checks; defaults to 250ms.
	PollInterval time.Duration
	// Ctx, when non-nil, cancels waiting (a cancelled Ask panics with the
	// context error, since crowd.Platform has no error channel; callers
	// that need graceful cancellation should recover at the run boundary).
	Ctx context.Context

	stats crowd.Stats
}

// NewClient returns a marketplace client for baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) ctx() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return context.Background()
}

func (c *Client) pollInterval() time.Duration {
	if c.PollInterval > 0 {
		return c.PollInterval
	}
	return 250 * time.Millisecond
}

// Ask implements crowd.Platform.
func (c *Client) Ask(reqs []crowd.Request) []crowd.Answer {
	if len(reqs) == 0 {
		return nil
	}
	c.stats.Record(reqs)

	qs := make([]QuestionJSON, len(reqs))
	for i, r := range reqs {
		qs[i] = QuestionJSON{A: r.Q.A, B: r.Q.B, Attr: r.Q.Attr, Workers: r.Workers}
	}
	roundID, err := c.postRound(qs)
	if err != nil {
		panic(fmt.Sprintf("crowdserve: posting round: %v", err))
	}

	for {
		done, answers, err := c.getRound(roundID)
		if err != nil {
			panic(fmt.Sprintf("crowdserve: polling round %d: %v", roundID, err))
		}
		if done {
			// The server answers in question order; map back onto the
			// request order (identical by construction).
			out := make([]crowd.Answer, len(reqs))
			for i, a := range answers {
				pref, err := parsePref(a.Pref)
				if err != nil {
					panic(fmt.Sprintf("crowdserve: %v", err))
				}
				out[i] = crowd.Answer{
					Q:    crowd.Question{A: a.A, B: a.B, Attr: a.Attr},
					Pref: pref,
				}
			}
			return out
		}
		select {
		case <-c.ctx().Done():
			panic(fmt.Sprintf("crowdserve: cancelled while waiting for round %d: %v", roundID, c.ctx().Err()))
		case <-time.After(c.pollInterval()):
		}
	}
}

// Stats implements crowd.Platform.
func (c *Client) Stats() *crowd.Stats { return &c.stats }

func (c *Client) postRound(qs []QuestionJSON) (int64, error) {
	body, err := json.Marshal(map[string]any{"questions": qs})
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(c.ctx(), http.MethodPost, c.BaseURL+"/api/rounds", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return 0, err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusCreated {
		return 0, fmt.Errorf("unexpected status %s", resp.Status)
	}
	var out struct {
		RoundID int64 `json:"round_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, err
	}
	return out.RoundID, nil
}

func (c *Client) getRound(id int64) (bool, []AnswerJSON, error) {
	req, err := http.NewRequestWithContext(c.ctx(), http.MethodGet,
		fmt.Sprintf("%s/api/rounds/%d", c.BaseURL, id), nil)
	if err != nil {
		return false, nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return false, nil, err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return false, nil, fmt.Errorf("unexpected status %s", resp.Status)
	}
	var out struct {
		Done    bool         `json:"done"`
		Answers []AnswerJSON `json:"answers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return false, nil, err
	}
	return out.Done, out.Answers, nil
}

// drainClose consumes the rest of a response body so the HTTP transport
// can reuse the connection. Failures here are unactionable — the response
// was already decoded (or rejected) by the caller, and the worst outcome
// is one lost keep-alive connection.
func drainClose(rc io.ReadCloser) {
	_, _ = io.Copy(io.Discard, rc) // skylint:ignore errdrop best-effort drain for connection reuse
	_ = rc.Close()                 // skylint:ignore errdrop read side already consumed; nothing to recover
}

package crowdserve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"crowdsky/internal/crowd"
	"crowdsky/internal/faultinject"
)

// WorkerConfig configures a simulated worker fleet driven against a
// marketplace over HTTP.
type WorkerConfig struct {
	// Count is the number of concurrent workers.
	Count int
	// Truth supplies correct answers; each worker errs independently.
	Truth crowd.Truth
	// Reliability is each worker's correctness probability.
	Reliability float64
	// PollInterval between work fetches when the queue is empty; defaults
	// to 50ms.
	PollInterval time.Duration
	// Seed drives the fleet's randomness.
	Seed int64
	// Faults, when non-nil, makes workers misbehave on purpose: abandon
	// fetched assignments (no-show), submit a judgment twice, or submit
	// after the lease lapsed. The decision stream is drawn from each
	// worker's own seeded RNG, so a fixed Seed reproduces the same
	// misbehaviour schedule. The marketplace must absorb all of it.
	Faults *faultinject.WorkerFaults
}

// SimulateWorkers runs a fleet of simulated workers against the
// marketplace at baseURL until ctx is cancelled. It returns after all
// workers have stopped. Errors from individual requests are retried after
// the poll interval — workers on flaky networks must not wedge.
func SimulateWorkers(ctx context.Context, baseURL string, cfg WorkerConfig) {
	poll := cfg.PollInterval
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	var wg sync.WaitGroup
	// One Add for the whole fleet, before any goroutine starts: the
	// counter can never be observed mid-ramp by Wait.
	wg.Add(cfg.Count)
	for w := 0; w < cfg.Count; w++ {
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(id)*7919))
			worker := crowd.Worker{ID: id, Reliability: cfg.Reliability}
			name := fmt.Sprintf("sim-%d", id)
			client := &http.Client{Timeout: 10 * time.Second}
			for {
				select {
				case <-ctx.Done():
					return
				default:
				}
				job, ok := fetchWork(ctx, client, baseURL, name)
				if !ok {
					select {
					case <-ctx.Done():
						return
					case <-time.After(poll):
					}
					continue
				}
				truth := cfg.Truth.Answer(crowd.Question{A: job.A, B: job.B, Attr: job.Attr})
				answer := worker.Judge(truth, rng)
				var fault faultinject.Kind
				if cfg.Faults != nil {
					fault = cfg.Faults.Next(rng)
				}
				switch fault {
				case faultinject.KindWorkerNoShow:
					// Walk away with the lease; the server must requeue the
					// slot once it lapses.
				case faultinject.KindWorkerDuplicate:
					submitAnswer(ctx, client, baseURL, name, job.AssignmentID, answer)
					submitAnswer(ctx, client, baseURL, name, job.AssignmentID, answer)
				case faultinject.KindWorkerStale:
					// Outlive the lease, then submit; the server must reject
					// the late judgment (the slot belongs to someone else).
					select {
					case <-ctx.Done():
						return
					case <-time.After(cfg.Faults.Delay()):
					}
					submitAnswer(ctx, client, baseURL, name, job.AssignmentID, answer)
				default:
					submitAnswer(ctx, client, baseURL, name, job.AssignmentID, answer)
				}
			}
		}(w)
	}
	wg.Wait()
}

type workItem struct {
	AssignmentID int64 `json:"assignment_id"`
	A            int   `json:"a"`
	B            int   `json:"b"`
	Attr         int   `json:"attr"`
}

func fetchWork(ctx context.Context, client *http.Client, baseURL, worker string) (workItem, bool) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		baseURL+"/api/work?worker="+worker, nil)
	if err != nil {
		return workItem{}, false
	}
	resp, err := client.Do(req)
	if err != nil {
		return workItem{}, false
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return workItem{}, false
	}
	var job workItem
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		return workItem{}, false
	}
	return job, true
}

func submitAnswer(ctx context.Context, client *http.Client, baseURL, worker string, assignment int64, pref crowd.Preference) {
	body, err := json.Marshal(map[string]any{
		"assignment_id": assignment,
		"worker":        worker,
		"pref":          pref.String(),
	})
	if err != nil {
		return
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		baseURL+"/api/answers", bytes.NewReader(body))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return
	}
	drainClose(resp.Body)
}

package crowdserve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"crowdsky/internal/core"
	"crowdsky/internal/crowd"
	"crowdsky/internal/dataset"
	"crowdsky/internal/metrics"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv := NewServer()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// TestMarketplaceLifecycle drives one round through the raw HTTP API:
// post, fetch work, answer, collect.
func TestMarketplaceLifecycle(t *testing.T) {
	_, ts := newTestServer(t)

	resp := postJSON(t, ts.URL+"/api/rounds", map[string]any{
		"questions": []QuestionJSON{{A: 0, B: 1, Attr: 0, Workers: 3}},
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("post round: %s", resp.Status)
	}
	round := decode[map[string]int64](t, resp)
	id := round["round_id"]

	// Round not done yet.
	resp, err := http.Get(ts.URL + "/api/rounds/1")
	if err != nil {
		t.Fatal(err)
	}
	status := decode[struct {
		Done bool `json:"done"`
	}](t, resp)
	if status.Done {
		t.Fatalf("round done before any judgment")
	}

	// Three distinct workers answer; the same worker cannot take two
	// slots of one question.
	for w := 0; w < 3; w++ {
		worker := string(rune('a' + w))
		resp, err := http.Get(ts.URL + "/api/work?worker=" + worker)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("worker %s got %s", worker, resp.Status)
		}
		job := decode[workItem](t, resp)
		// The same worker asking again gets nothing (single question).
		again, err := http.Get(ts.URL + "/api/work?worker=" + worker)
		if err != nil {
			t.Fatal(err)
		}
		if again.StatusCode != http.StatusNoContent {
			t.Fatalf("worker %s given a second slot of the same question: %s", worker, again.Status)
		}
		again.Body.Close()
		pref := "first"
		if w == 2 {
			pref = "second" // minority vote
		}
		resp = postJSON(t, ts.URL+"/api/answers", map[string]any{
			"assignment_id": job.AssignmentID, "worker": worker, "pref": pref,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("answer: %s", resp.Status)
		}
		resp.Body.Close()
	}

	resp, err = http.Get(ts.URL + "/api/rounds/" + itoa64(id))
	if err != nil {
		t.Fatal(err)
	}
	final := decode[struct {
		Done    bool         `json:"done"`
		Answers []AnswerJSON `json:"answers"`
	}](t, resp)
	if !final.Done || len(final.Answers) != 1 {
		t.Fatalf("final = %+v", final)
	}
	if final.Answers[0].Pref != "first" {
		t.Errorf("majority = %s, want first", final.Answers[0].Pref)
	}
}

func itoa64(v int64) string {
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if i == len(buf) {
		return "0"
	}
	return string(buf[i:])
}

// TestLeaseExpiry: an unanswered assignment returns to the queue after its
// lease lapses, so another worker can take it.
func TestLeaseExpiry(t *testing.T) {
	srv, ts := newTestServer(t)
	srv.SetLease(1 * time.Millisecond)

	resp := postJSON(t, ts.URL+"/api/rounds", map[string]any{
		"questions": []QuestionJSON{{A: 0, B: 1, Attr: 0, Workers: 1}},
	})
	resp.Body.Close()

	resp, err := http.Get(ts.URL + "/api/work?worker=slacker")
	if err != nil {
		t.Fatal(err)
	}
	job := decode[workItem](t, resp)
	time.Sleep(5 * time.Millisecond)

	// Another worker gets the requeued assignment.
	resp, err = http.Get(ts.URL + "/api/work?worker=diligent")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("requeued assignment not handed out: %s", resp.Status)
	}
	job2 := decode[workItem](t, resp)
	if job2.A != job.A || job2.B != job.B {
		t.Errorf("different question after requeue")
	}
	// The slacker's late answer is rejected.
	resp = postJSON(t, ts.URL+"/api/answers", map[string]any{
		"assignment_id": job.AssignmentID, "worker": "slacker", "pref": "first",
	})
	if resp.StatusCode == http.StatusOK {
		t.Errorf("expired lease accepted an answer")
	}
	resp.Body.Close()
	// The diligent worker's answer lands.
	resp = postJSON(t, ts.URL+"/api/answers", map[string]any{
		"assignment_id": job2.AssignmentID, "worker": "diligent", "pref": "second",
	})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("valid answer rejected: %s", resp.Status)
	}
	resp.Body.Close()
}

func TestServerValidation(t *testing.T) {
	_, ts := newTestServer(t)
	// Empty round.
	resp := postJSON(t, ts.URL+"/api/rounds", map[string]any{"questions": []QuestionJSON{}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty round: %s", resp.Status)
	}
	resp.Body.Close()
	// Unknown round.
	r, err := http.Get(ts.URL + "/api/rounds/999")
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown round: %s", r.Status)
	}
	r.Body.Close()
	// Missing worker id.
	r, err = http.Get(ts.URL + "/api/work")
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("missing worker: %s", r.Status)
	}
	r.Body.Close()
	// Bad preference.
	resp = postJSON(t, ts.URL+"/api/answers", map[string]any{
		"assignment_id": 1, "worker": "w", "pref": "maybe",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad pref: %s", resp.Status)
	}
	resp.Body.Close()
	// Answer to an unleased assignment.
	resp = postJSON(t, ts.URL+"/api/answers", map[string]any{
		"assignment_id": 42, "worker": "w", "pref": "first",
	})
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("unleased answer: %s", resp.Status)
	}
	resp.Body.Close()
}

// TestEndToEndSkylineOverHTTP is the flagship integration test: the full
// CrowdSky algorithm runs over the HTTP marketplace against a fleet of
// simulated workers, and recovers the paper's toy skyline.
func TestEndToEndSkylineOverHTTP(t *testing.T) {
	_, ts := newTestServer(t)
	d := dataset.Toy()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	workersDone := make(chan struct{})
	go func() {
		defer close(workersDone)
		SimulateWorkers(ctx, ts.URL, WorkerConfig{
			Count:        4,
			Truth:        crowd.DatasetTruth{Data: d},
			Reliability:  1.0,
			PollInterval: 2 * time.Millisecond,
			Seed:         1,
		})
	}()

	client := NewClient(ts.URL)
	client.PollInterval = 2 * time.Millisecond
	res := core.ParallelSL(d, client, core.AllPruning())

	cancel()
	<-workersDone

	want := core.Oracle(d)
	if !metrics.SameSet(res.Skyline, want) {
		t.Errorf("skyline over HTTP = %v, want %v", res.Skyline, want)
	}
	if res.Questions != 12 || res.Rounds != 6 {
		t.Errorf("HTTP run: %d questions in %d rounds, want 12 in 6", res.Questions, res.Rounds)
	}
}

// TestEndToEndMajorityVotingOverHTTP: noisy workers with 3-worker majority
// voting still answer; the run completes and the stats add up.
func TestEndToEndMajorityVotingOverHTTP(t *testing.T) {
	_, ts := newTestServer(t)
	d := dataset.Toy()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	workersDone := make(chan struct{})
	go func() {
		defer close(workersDone)
		SimulateWorkers(ctx, ts.URL, WorkerConfig{
			Count:        6,
			Truth:        crowd.DatasetTruth{Data: d},
			Reliability:  0.9,
			PollInterval: 2 * time.Millisecond,
			Seed:         7,
		})
	}()

	client := NewClient(ts.URL)
	client.PollInterval = 2 * time.Millisecond
	opts := core.AllPruning()
	opts.Voting = staticPolicy{3}
	res := core.CrowdSky(d, client, opts)

	cancel()
	<-workersDone

	if res.WorkerAnswers != 3*res.Questions {
		t.Errorf("worker answers %d != 3 × %d", res.WorkerAnswers, res.Questions)
	}
	if len(res.Skyline) == 0 {
		t.Errorf("empty skyline")
	}
}

// staticPolicy avoids importing the voting package for a one-liner.
type staticPolicy struct{ omega int }

func (p staticPolicy) Workers(int) int { return p.omega }

// TestClientEmptyAsk: an empty round is a no-op without network traffic.
func TestClientEmptyAsk(t *testing.T) {
	client := NewClient("http://unreachable.invalid")
	if client.Ask(nil) != nil {
		t.Errorf("empty ask returned answers")
	}
	if client.Stats().Rounds() != 0 {
		t.Errorf("empty ask consumed a round")
	}
}

// TestStatsEndpointShape checks the JSON shape of GET /api/stats including
// the lease-requeue and per-worker judgment extensions.
func TestStatsEndpointShape(t *testing.T) {
	srv, ts := newTestServer(t)
	srv.SetLease(1 * time.Millisecond)

	resp := postJSON(t, ts.URL+"/api/rounds", map[string]any{
		"questions": []QuestionJSON{
			{A: 0, B: 1, Attr: 0, Workers: 1},
			{A: 2, B: 3, Attr: 0, Workers: 1},
		},
	})
	resp.Body.Close()

	// First worker leases an assignment and lets it lapse (one requeue);
	// a second worker answers both questions.
	resp, err := http.Get(ts.URL + "/api/work?worker=slacker")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	time.Sleep(5 * time.Millisecond)
	for i := 0; i < 2; i++ {
		resp, err = http.Get(ts.URL + "/api/work?worker=diligent")
		if err != nil {
			t.Fatal(err)
		}
		job := decode[workItem](t, resp)
		resp = postJSON(t, ts.URL+"/api/answers", map[string]any{
			"assignment_id": job.AssignmentID, "worker": "diligent", "pref": "first",
		})
		resp.Body.Close()
	}

	resp, err = http.Get(ts.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	type statsResp struct {
		Rounds            int            `json:"rounds"`
		Questions         int            `json:"questions"`
		Judgments         int            `json:"judgments"`
		Open              int            `json:"open"`
		LeaseRequeues     int            `json:"lease_requeues"`
		JudgmentsByWorker map[string]int `json:"judgments_by_worker"`
	}
	st := decode[statsResp](t, resp)
	if st.Rounds != 1 || st.Questions != 2 || st.Judgments != 2 || st.Open != 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.LeaseRequeues != 1 {
		t.Errorf("lease_requeues = %d, want 1", st.LeaseRequeues)
	}
	if st.JudgmentsByWorker["diligent"] != 2 || st.JudgmentsByWorker["slacker"] != 0 {
		t.Errorf("judgments_by_worker = %v", st.JudgmentsByWorker)
	}
}

// TestMetricsEndpoint scrapes GET /metrics after a round completes and
// checks the Prometheus exposition carries the marketplace counters and
// the per-route HTTP latency histograms.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	resp := postJSON(t, ts.URL+"/api/rounds", map[string]any{
		"questions": []QuestionJSON{{A: 0, B: 1, Attr: 0, Workers: 1}},
	})
	resp.Body.Close()
	resp, err := http.Get(ts.URL + "/api/work?worker=w1")
	if err != nil {
		t.Fatal(err)
	}
	job := decode[workItem](t, resp)
	resp = postJSON(t, ts.URL+"/api/answers", map[string]any{
		"assignment_id": job.AssignmentID, "worker": "w1", "pref": "first",
	})
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(data)
	for _, line := range []string{
		"crowdserve_rounds_total 1",
		"crowdserve_questions_total 1",
		"crowdserve_judgments_total 1",
		"crowdserve_lease_requeues_total 0",
		"crowdserve_open_assignments 0",
		`crowdserve_http_requests_total{route="/api/rounds",method="POST",code="201"} 1`,
		`crowdserve_http_request_seconds_count{route="/api/answers"} 1`,
		"# TYPE crowdserve_http_request_seconds histogram",
	} {
		if !strings.Contains(body, line+"\n") {
			t.Errorf("metrics missing %q", line)
		}
	}
}

// TestPersistRequeuesAndPerWorker round-trips the new snapshot fields.
func TestPersistRequeuesAndPerWorker(t *testing.T) {
	srv := NewServer()
	srv.mu.Lock()
	srv.requeues = 3
	srv.perWorker["w1"] = 7
	srv.mu.Unlock()

	var buf bytes.Buffer
	if err := srv.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored := NewServer()
	if err := restored.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	restored.mu.Lock()
	defer restored.mu.Unlock()
	if restored.requeues != 3 || restored.perWorker["w1"] != 7 {
		t.Errorf("restored requeues=%d perWorker=%v", restored.requeues, restored.perWorker)
	}
}

package crowdserve

import (
	"context"
	"strings"
	"testing"
	"time"

	"crowdsky/internal/crowd"
	"crowdsky/internal/telemetry"
)

// TestClientCancellationDuringPoll posts a round that no worker will ever
// answer and cancels the context mid-poll: AskCtx must abandon the wait
// promptly (panicking with the context error) instead of sleeping out
// its poll interval, and the retry metric must count the re-polls.
func TestClientCancellationDuringPoll(t *testing.T) {
	_, ts := newTestServer(t)
	c := NewClient(ts.URL)
	c.PollInterval = 20 * time.Millisecond
	reg := telemetry.NewRegistry()
	c.InstrumentMetrics(reg)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(70 * time.Millisecond)
		cancel()
	}()

	done := make(chan any, 1)
	go func() {
		defer func() { done <- recover() }()
		c.AskCtx(ctx, []crowd.Request{{Q: crowd.Question{A: 0, B: 1}, Workers: 1}})
		done <- nil
	}()

	start := time.Now()
	select {
	case v := <-done:
		if v == nil {
			t.Fatal("AskCtx returned without answers on a cancelled context")
		}
		msg, ok := v.(string)
		if !ok || !strings.Contains(msg, "cancelled") {
			t.Fatalf("panic = %v, want cancellation message", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("AskCtx did not notice the cancellation")
	}
	// The cancel fires ~70ms in; a client honouring cancellation returns
	// well before a full extra poll cycle on top of that.
	if waited := time.Since(start); waited > time.Second {
		t.Errorf("cancellation took %v; the poll sleep outlived the context", waited)
	}

	var sb strings.Builder
	if _, err := reg.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "crowdserve_client_retries_total") {
		t.Errorf("retry metric not registered:\n%s", sb.String())
	}
	exposition := sb.String()
	if strings.Contains(exposition, "crowdserve_client_retries_total 0\n") {
		t.Errorf("no re-polls counted despite several poll cycles:\n%s", exposition)
	}
}

package journal

import (
	"bytes"
	"strings"
	"testing"

	"crowdsky/internal/core"
	"crowdsky/internal/crowd"
	"crowdsky/internal/dataset"
	"crowdsky/internal/metrics"
)

func TestWriteRead(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	req := crowd.Request{Q: crowd.Question{A: 1, B: 2, Attr: 0}, Workers: 5}
	if err := w.Append(1, req, crowd.First); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(2, crowd.Request{Q: crowd.Question{A: 3, B: 4}}, crowd.Equal); err != nil {
		t.Fatal(err)
	}
	entries, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("entries = %d", len(entries))
	}
	if entries[0].Seq != 1 || entries[0].A != 1 || entries[0].B != 2 || entries[0].Pref != "first" ||
		entries[0].Workers != 5 || entries[0].Round != 1 {
		t.Errorf("entry 0 = %+v", entries[0])
	}
	if entries[1].Pref != "equal" {
		t.Errorf("entry 1 = %+v", entries[1])
	}
}

func TestReadTornTail(t *testing.T) {
	good := `{"seq":1,"round":1,"a":0,"b":1,"attr":0,"workers":1,"pref":"first","time":"2026-01-01T00:00:00Z"}`
	entries, err := Read(strings.NewReader(good + "\n" + `{"seq":2,"ro`))
	if err != nil {
		t.Fatalf("torn tail rejected: %v", err)
	}
	if len(entries) != 1 {
		t.Errorf("entries = %d, want 1", len(entries))
	}
	// Corruption in the middle is an error.
	if _, err := Read(strings.NewReader("garbage\n" + good + "\n")); err == nil {
		t.Errorf("mid-stream corruption accepted")
	}
	// Unknown preference is an error at platform construction.
	bad := `{"seq":1,"round":1,"a":0,"b":1,"attr":0,"workers":1,"pref":"maybe","time":"2026-01-01T00:00:00Z"}`
	entries, err = Read(strings.NewReader(bad + "\n" + good + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPlatform(nil, entries, NewWriter(&bytes.Buffer{})); err == nil {
		t.Errorf("unknown preference accepted")
	}
}

// TestChecksumWrittenAndVerified: Append stamps every record with a CRC
// that Read verifies; a flipped payload byte mid-file is an error, and a
// flipped byte on the final record is treated as a crash artifact.
func TestChecksumWrittenAndVerified(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 3; i++ {
		req := crowd.Request{Q: crowd.Question{A: i, B: i + 1}, Workers: 1}
		if err := w.Append(1, req, crowd.First); err != nil {
			t.Fatal(err)
		}
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	for i, line := range lines {
		if !strings.Contains(line, `"sum":"`) {
			t.Fatalf("line %d missing checksum: %s", i, line)
		}
	}

	// Corrupt the payload of line 1 (middle) without breaking JSON: the
	// stored sum no longer matches.
	corrupt := strings.Replace(lines[1], `"pref":"first"`, `"pref":"equal"`, 1)
	if _, err := Read(strings.NewReader(lines[0] + "\n" + corrupt + "\n" + lines[2] + "\n")); err == nil {
		t.Error("mid-file checksum mismatch accepted")
	}
	// The same corruption on the final line is tolerated as a torn tail.
	entries, err := Read(strings.NewReader(lines[0] + "\n" + lines[1] + "\n" + corrupt + "\n"))
	if err != nil {
		t.Fatalf("final-line corruption rejected: %v", err)
	}
	if len(entries) != 2 {
		t.Errorf("entries = %d, want 2", len(entries))
	}
	// Legacy records without a sum still read fine.
	legacy := `{"seq":1,"round":1,"a":0,"b":1,"attr":0,"workers":1,"pref":"first","time":"2026-01-01T00:00:00Z"}`
	if entries, err = Read(strings.NewReader(legacy + "\n")); err != nil || len(entries) != 1 {
		t.Errorf("legacy record: %d entries, %v", len(entries), err)
	}
}

// TestRecover: a damaged journal yields its longest intact prefix, an
// exact truncation point, and a count of what was dropped.
func TestRecover(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 3; i++ {
		req := crowd.Request{Q: crowd.Question{A: i, B: i + 1}, Workers: 1}
		if err := w.Append(1, req, crowd.Second); err != nil {
			t.Fatal(err)
		}
	}
	full := buf.Bytes()

	t.Run("clean", func(t *testing.T) {
		entries, st, err := Recover(bytes.NewReader(full))
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 3 || st.Dropped != 0 || st.IntactBytes != int64(len(full)) {
			t.Errorf("entries=%d stats=%+v len=%d", len(entries), st, len(full))
		}
	})
	t.Run("torn tail", func(t *testing.T) {
		torn := full[:len(full)-10]
		entries, st, err := Recover(bytes.NewReader(torn))
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 2 || st.Dropped != 1 {
			t.Fatalf("entries=%d stats=%+v", len(entries), st)
		}
		// The intact prefix re-reads cleanly and is a Recover fixed point.
		again, st2, err := Recover(bytes.NewReader(torn[:st.IntactBytes]))
		if err != nil || len(again) != 2 || st2.Dropped != 0 || st2.IntactBytes != st.IntactBytes {
			t.Errorf("fixed point: entries=%d stats=%+v err=%v", len(again), st2, err)
		}
		strict, err := Read(bytes.NewReader(torn[:st.IntactBytes]))
		if err != nil || len(strict) != 2 {
			t.Errorf("strict read of intact prefix: %d entries, %v", len(strict), err)
		}
	})
	t.Run("missing final newline", func(t *testing.T) {
		// A parseable record with no newline may still be mid-write; it
		// must not count as intact or later appends would concatenate.
		entries, st, err := Recover(bytes.NewReader(full[:len(full)-1]))
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 2 || st.Dropped != 1 {
			t.Errorf("entries=%d stats=%+v", len(entries), st)
		}
	})
	t.Run("mid-file garbage", func(t *testing.T) {
		lines := bytes.SplitAfter(full, []byte("\n"))
		damaged := append(append(append([]byte{}, lines[0]...), []byte("garbage\n")...), lines[1]...)
		entries, st, err := Recover(bytes.NewReader(damaged))
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 1 || st.Dropped != 2 || st.IntactBytes != int64(len(lines[0])) {
			t.Errorf("entries=%d stats=%+v", len(entries), st)
		}
	})
	t.Run("checksum corruption stops the scan", func(t *testing.T) {
		damaged := bytes.Replace(full, []byte(`"pref":"second"`), []byte(`"pref":"first"`), 1)
		entries, st, err := Recover(bytes.NewReader(damaged))
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 0 || st.Dropped != 3 || st.IntactBytes != 0 {
			t.Errorf("entries=%d stats=%+v", len(entries), st)
		}
	})
	t.Run("empty", func(t *testing.T) {
		entries, st, err := Recover(bytes.NewReader(nil))
		if err != nil || len(entries) != 0 || st.Dropped != 0 || st.IntactBytes != 0 {
			t.Errorf("entries=%d stats=%+v err=%v", len(entries), st, err)
		}
	})
}

// TestResumeReplaysForFree: run the toy query, "crash", resume from the
// journal with a live platform that must never be asked anything.
func TestResumeReplaysForFree(t *testing.T) {
	d := dataset.Toy()

	// First run: journal everything.
	var log bytes.Buffer
	live1 := crowd.NewPerfect(crowd.DatasetTruth{Data: d})
	p1, err := NewPlatform(live1, nil, NewWriter(&log))
	if err != nil {
		t.Fatal(err)
	}
	res1 := core.CrowdSky(d, p1, core.AllPruning())
	if res1.Questions != 12 || p1.Replayed() != 0 {
		t.Fatalf("first run: %d questions, %d replayed", res1.Questions, p1.Replayed())
	}

	// Resume: the live platform is a booby trap — any Ask panics.
	entries, err := Read(bytes.NewReader(log.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 12 {
		t.Fatalf("journal has %d entries, want 12", len(entries))
	}
	var log2 bytes.Buffer
	p2, err := NewPlatform(boobyTrap{t}, entries, NewWriter(&log2))
	if err != nil {
		t.Fatal(err)
	}
	res2 := core.CrowdSky(d, p2, core.AllPruning())
	if !metrics.SameSet(res1.Skyline, res2.Skyline) {
		t.Errorf("resumed skyline differs: %v vs %v", res1.Skyline, res2.Skyline)
	}
	if p2.Replayed() != 12 {
		t.Errorf("replayed %d, want 12", p2.Replayed())
	}
	if log2.Len() != 0 {
		t.Errorf("resume wrote %d bytes of new journal", log2.Len())
	}
}

// TestResumeMidRun: replay a journal prefix; the resumed run re-asks only
// the missing suffix.
func TestResumeMidRun(t *testing.T) {
	d := dataset.Toy()
	var log bytes.Buffer
	p1, err := NewPlatform(crowd.NewPerfect(crowd.DatasetTruth{Data: d}), nil, NewWriter(&log))
	if err != nil {
		t.Fatal(err)
	}
	core.CrowdSky(d, p1, core.AllPruning())

	entries, err := Read(bytes.NewReader(log.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	prefix := entries[:7] // crash after 7 answers

	var log2 bytes.Buffer
	live := crowd.NewPerfect(crowd.DatasetTruth{Data: d})
	p2, err := NewPlatform(live, prefix, NewWriter(&log2))
	if err != nil {
		t.Fatal(err)
	}
	res := core.CrowdSky(d, p2, core.AllPruning())
	if p2.Replayed() != 7 {
		t.Errorf("replayed %d, want 7", p2.Replayed())
	}
	if live.Stats().Questions() != 5 {
		t.Errorf("live platform asked %d, want the 5 missing", live.Stats().Questions())
	}
	if !metrics.SameSet(res.Skyline, core.Oracle(d)) {
		t.Errorf("resumed skyline wrong")
	}
	// New answers were journaled with continuing sequence numbers.
	newEntries, err := Read(bytes.NewReader(log2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(newEntries) != 5 || newEntries[0].Seq != 8 {
		t.Errorf("new journal = %+v", newEntries)
	}
}

// boobyTrap is a platform that fails the test when asked.
type boobyTrap struct{ t *testing.T }

func (b boobyTrap) Ask(reqs []crowd.Request) []crowd.Answer {
	b.t.Fatalf("live platform asked %d questions during full replay", len(reqs))
	return nil
}
func (b boobyTrap) Stats() *crowd.Stats { return &crowd.Stats{} }

package journal

import (
	"bytes"
	"strings"
	"testing"

	"crowdsky/internal/crowd"
)

// FuzzRead hardens the journal reader: arbitrary bytes must never panic,
// and whatever parses must survive a write/read round trip.
func FuzzRead(f *testing.F) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w.Append(1, crowd.Request{Q: crowd.Question{A: 1, B: 2}, Workers: 3}, crowd.First)
	_ = w.Append(1, crowd.Request{Q: crowd.Question{A: 2, B: 3}}, crowd.Equal)
	f.Add(buf.String())
	f.Add(buf.String()[:buf.Len()-10]) // torn tail
	f.Add("")
	f.Add("{}\n{}\n")
	f.Add("not json\n" + buf.String())
	// Checksummed record with a flipped payload byte (sum mismatch).
	f.Add(strings.Replace(buf.String(), `"a":1`, `"a":7`, 1))
	// Truncated mid-record at various depths.
	f.Add(buf.String()[:buf.Len()/2])
	f.Add(buf.String()[:1])
	f.Fuzz(func(t *testing.T, input string) {
		entries, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		// Round trip: re-encode and re-read.
		var out bytes.Buffer
		w2 := NewWriter(&out)
		for _, e := range entries {
			pref, perr := parsePref(e.Pref)
			if perr != nil {
				return // unparseable preference; NewPlatform would reject
			}
			if err := w2.Append(e.Round, crowd.Request{
				Q:       crowd.Question{A: e.A, B: e.B, Attr: e.Attr},
				Workers: e.Workers,
			}, pref); err != nil {
				t.Fatal(err)
			}
		}
		back, err := Read(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(back) != len(entries) {
			t.Fatalf("round trip lost entries: %d vs %d", len(back), len(entries))
		}
	})
}

// FuzzRecover hardens truncate-at-corruption recovery: for arbitrary
// bytes — including truncated and corrupted-record journals — Recover
// must never error or panic, every record it keeps must be an intact
// prefix record (the prefix re-reads cleanly under the strict reader),
// and recovery must be a fixed point of its own intact prefix.
func FuzzRecover(f *testing.F) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w.Append(1, crowd.Request{Q: crowd.Question{A: 1, B: 2}, Workers: 3}, crowd.First)
	_ = w.Append(1, crowd.Request{Q: crowd.Question{A: 2, B: 3}}, crowd.Equal)
	_ = w.Append(2, crowd.Request{Q: crowd.Question{A: 4, B: 5}, Workers: 1}, crowd.Second)
	clean := buf.String()
	f.Add(clean)
	for _, cut := range []int{1, len(clean) / 3, len(clean) / 2, len(clean) - 1} {
		f.Add(clean[:cut]) // torn at assorted record boundaries and mid-record
	}
	f.Add(strings.Replace(clean, `"a":2`, `"a":9`, 1))                   // corrupted middle record (sum mismatch)
	f.Add(strings.Replace(clean, `"pref":"first"`, `"pref":"FIRST"`, 1)) // corrupted first record
	f.Add("garbage\n" + clean)                                           // leading junk
	f.Add(clean[:len(clean)/2] + "junk\n" + clean[len(clean)/2:])        // junk splice mid-file
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		entries, st, err := Recover(strings.NewReader(input))
		if err != nil {
			t.Fatalf("Recover errored on in-memory input: %v", err)
		}
		if st.IntactBytes < 0 || st.IntactBytes > int64(len(input)) {
			t.Fatalf("IntactBytes %d out of range [0,%d]", st.IntactBytes, len(input))
		}
		prefix := input[:st.IntactBytes]
		// The intact prefix must satisfy the strict reader with the exact
		// same records — recovery never keeps anything Read would reject.
		strict, err := Read(strings.NewReader(prefix))
		if err != nil {
			t.Fatalf("strict read rejected recovered prefix: %v", err)
		}
		if len(strict) != len(entries) {
			t.Fatalf("prefix re-read %d entries, Recover kept %d", len(strict), len(entries))
		}
		for i := range strict {
			if strict[i] != entries[i] {
				t.Fatalf("entry %d mismatch: %+v vs %+v", i, strict[i], entries[i])
			}
		}
		// Recover is a fixed point on its own output.
		again, st2, err := Recover(strings.NewReader(prefix))
		if err != nil || len(again) != len(entries) || st2.Dropped != 0 || st2.IntactBytes != st.IntactBytes {
			t.Fatalf("not a fixed point: %d entries, %+v, %v", len(again), st2, err)
		}
	})
}

package journal

import (
	"bytes"
	"strings"
	"testing"

	"crowdsky/internal/crowd"
)

// FuzzRead hardens the journal reader: arbitrary bytes must never panic,
// and whatever parses must survive a write/read round trip.
func FuzzRead(f *testing.F) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w.Append(1, crowd.Request{Q: crowd.Question{A: 1, B: 2}, Workers: 3}, crowd.First)
	_ = w.Append(1, crowd.Request{Q: crowd.Question{A: 2, B: 3}}, crowd.Equal)
	f.Add(buf.String())
	f.Add(buf.String()[:buf.Len()-10]) // torn tail
	f.Add("")
	f.Add("{}\n{}\n")
	f.Add("not json\n" + buf.String())
	f.Fuzz(func(t *testing.T, input string) {
		entries, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		// Round trip: re-encode and re-read.
		var out bytes.Buffer
		w2 := NewWriter(&out)
		for _, e := range entries {
			pref, perr := parsePref(e.Pref)
			if perr != nil {
				return // unparseable preference; NewPlatform would reject
			}
			if err := w2.Append(e.Round, crowd.Request{
				Q:       crowd.Question{A: e.A, B: e.B, Attr: e.Attr},
				Workers: e.Workers,
			}, pref); err != nil {
				t.Fatal(err)
			}
		}
		back, err := Read(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(back) != len(entries) {
			t.Fatalf("round trip lost entries: %d vs %d", len(back), len(entries))
		}
	})
}

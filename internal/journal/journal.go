// Package journal provides a durable audit log for crowd runs and
// crash-resume on top of it.
//
// Crowd-enabled queries run for hours on a real marketplace (the paper's
// Q3 HITs averaged 93 seconds each), so a production deployment must
// survive requester restarts without re-paying for answered questions.
// The journal records every aggregated answer as one JSON line; resuming a
// run replays recorded answers for free and only sends genuinely new
// questions to the live platform. Because the algorithms are
// deterministic given the answer set, a resumed run retraces the original
// question sequence exactly and continues where the journal ends.
package journal

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"crowdsky/internal/crowd"
)

// Entry is one journaled answer.
type Entry struct {
	Seq     int       `json:"seq"`
	Round   int       `json:"round"`
	A       int       `json:"a"`
	B       int       `json:"b"`
	Attr    int       `json:"attr"`
	Workers int       `json:"workers"`
	Pref    string    `json:"pref"`
	Time    time.Time `json:"time"`
	// Sum is the CRC32 (IEEE) of the entry's JSON encoding with Sum
	// itself empty, as eight lowercase hex digits. It detects bit rot and
	// partially-flushed records that still happen to parse. Empty on
	// records written before checksums existed; those are accepted as-is.
	Sum string `json:"sum,omitempty"`
}

// checksum computes the entry's record checksum: the CRC32-IEEE of its
// canonical JSON encoding with the Sum field cleared. e is a copy, so
// clearing Sum here never mutates the caller's record.
func checksum(e Entry) (string, error) {
	e.Sum = ""
	data, err := json.Marshal(e)
	if err != nil {
		return "", fmt.Errorf("journal: encoding entry for checksum: %w", err)
	}
	return fmt.Sprintf("%08x", crc32.ChecksumIEEE(data)), nil
}

// verify reports whether the entry's stored checksum matches its content.
// Legacy records with no checksum pass; they predate the Sum field.
func verify(e Entry) bool {
	if e.Sum == "" {
		return true
	}
	sum, err := checksum(e)
	return err == nil && sum == e.Sum
}

// Writer appends entries to an underlying stream, one JSON object per
// line. Writes go through immediately (no internal buffering), so a crash
// loses at most the in-flight entry.
type Writer struct {
	w    io.Writer
	seq  int
	errs error
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Append journals one answer.
func (jw *Writer) Append(round int, req crowd.Request, pref crowd.Preference) error {
	jw.seq++
	e := Entry{
		Seq:     jw.seq,
		Round:   round,
		A:       req.Q.A,
		B:       req.Q.B,
		Attr:    req.Q.Attr,
		Workers: req.Workers,
		Pref:    pref.String(),
		Time:    time.Now().UTC(),
	}
	sum, err := checksum(e)
	if err != nil {
		return err
	}
	e.Sum = sum
	data, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("journal: encoding entry: %w", err)
	}
	data = append(data, '\n')
	if _, err := jw.w.Write(data); err != nil {
		return fmt.Errorf("journal: writing entry: %w", err)
	}
	return nil
}

// Read parses a journal stream. A truncated or checksum-corrupted
// trailing line (a crash mid write) is tolerated and ignored; malformed
// or corrupted content anywhere else is an error. Use Recover when the
// journal may be damaged mid-file and salvaging the intact prefix is the
// right call (e.g. the resume CLI after an unclean shutdown).
func Read(r io.Reader) ([]Entry, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	var lines []string
	for sc.Scan() {
		if len(sc.Bytes()) > 0 {
			lines = append(lines, sc.Text())
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	var out []Entry
	for i, text := range lines {
		var e Entry
		if err := json.Unmarshal([]byte(text), &e); err != nil {
			if i == len(lines)-1 {
				break // torn final line after a crash
			}
			return nil, fmt.Errorf("journal: line %d: %w", i+1, err)
		}
		if !verify(e) {
			if i == len(lines)-1 {
				break // corrupted final line after a crash
			}
			return nil, fmt.Errorf("journal: line %d: checksum mismatch", i+1)
		}
		out = append(out, e)
	}
	return out, nil
}

// RecoverStats describes what Recover salvaged.
type RecoverStats struct {
	// IntactBytes is the byte length of the verified journal prefix,
	// including each surviving record's trailing newline. Truncating the
	// journal file to this length yields a clean journal that can be
	// appended to safely.
	IntactBytes int64
	// Dropped counts the non-empty lines abandoned at and after the first
	// corruption — the torn record plus anything trailing it.
	Dropped int
}

// Recover parses a possibly-damaged journal stream, salvaging the
// longest intact prefix. Unlike Read, corruption — a record that fails
// to parse, fails its checksum, or lacks its trailing newline — is not
// an error: scanning stops at the first damaged record and everything
// before it is returned. The only error is a genuine I/O failure.
//
// Callers resuming from a recovered journal should truncate the backing
// file to IntactBytes before appending, so new records never concatenate
// onto a torn tail.
func Recover(r io.Reader) ([]Entry, RecoverStats, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, RecoverStats{}, fmt.Errorf("journal: %w", err)
	}
	var (
		entries []Entry
		st      RecoverStats
	)
	rest := data
	for len(rest) > 0 {
		nl := bytes.IndexByte(rest, '\n')
		complete := nl >= 0
		var line []byte
		var lineLen int64
		if complete {
			line, lineLen = rest[:nl], int64(nl+1)
		} else {
			// A record without its newline may still be mid-write even if
			// it parses; treat it as torn so appends stay well-formed.
			line, lineLen = rest, int64(len(rest))
		}
		if trimmed := bytes.TrimSpace(line); len(trimmed) == 0 {
			st.IntactBytes += lineLen
			rest = rest[lineLen:]
			continue
		}
		var e Entry
		if !complete || json.Unmarshal(line, &e) != nil || !verify(e) {
			st.Dropped = countNonEmptyLines(rest)
			break
		}
		entries = append(entries, e)
		st.IntactBytes += lineLen
		rest = rest[lineLen:]
	}
	return entries, st, nil
}

func countNonEmptyLines(data []byte) int {
	n := 0
	for _, line := range bytes.Split(data, []byte{'\n'}) {
		if len(bytes.TrimSpace(line)) > 0 {
			n++
		}
	}
	return n
}

// answersOf converts entries to crowd answers.
func answersOf(entries []Entry) ([]crowd.Answer, error) {
	out := make([]crowd.Answer, 0, len(entries))
	for _, e := range entries {
		pref, err := parsePref(e.Pref)
		if err != nil {
			return nil, err
		}
		out = append(out, crowd.Answer{
			Q:    crowd.Question{A: e.A, B: e.B, Attr: e.Attr},
			Pref: pref,
		})
	}
	return out, nil
}

func parsePref(s string) (crowd.Preference, error) {
	switch s {
	case "first":
		return crowd.First, nil
	case "second":
		return crowd.Second, nil
	case "equal":
		return crowd.Equal, nil
	}
	return 0, fmt.Errorf("journal: unknown preference %q", s)
}

// Platform wraps a live crowd platform with journaling and replay: answers
// already in the journal are served locally at zero live cost, new
// questions go to the live platform and are appended to the journal. It
// implements crowd.Platform.
type Platform struct {
	live     crowd.Platform
	writer   *Writer
	recorded map[crowd.Question]crowd.Preference
	stats    crowd.Stats
	replayed int
}

// NewPlatform builds a journaling platform: entries holds the journal read
// so far (empty for a fresh run), live answers new questions, and every
// new answer is appended through w.
func NewPlatform(live crowd.Platform, entries []Entry, w *Writer) (*Platform, error) {
	answers, err := answersOf(entries)
	if err != nil {
		return nil, err
	}
	p := &Platform{
		live:     live,
		writer:   w,
		recorded: make(map[crowd.Question]crowd.Preference, 2*len(answers)),
	}
	w.seq = len(entries)
	for _, a := range answers {
		p.recorded[a.Q] = a.Pref
		p.recorded[crowd.Question{A: a.Q.B, B: a.Q.A, Attr: a.Q.Attr}] = a.Pref.Flip()
	}
	return p, nil
}

// Ask implements crowd.Platform: replayed answers are free; unseen
// questions form one live round and are journaled.
func (p *Platform) Ask(reqs []crowd.Request) []crowd.Answer {
	return p.AskCtx(context.Background(), reqs)
}

// AskCtx implements crowd.ContextPlatform, forwarding the context to the
// live platform for cancellation and trace propagation.
func (p *Platform) AskCtx(ctx context.Context, reqs []crowd.Request) []crowd.Answer {
	if len(reqs) == 0 {
		return nil
	}
	p.stats.Record(reqs)
	round := p.stats.Rounds()

	out := make([]crowd.Answer, len(reqs))
	var liveReqs []crowd.Request
	var liveIdx []int
	for i, r := range reqs {
		if pref, ok := p.recorded[r.Q]; ok {
			out[i] = crowd.Answer{Q: r.Q, Pref: pref}
			p.replayed++
			continue
		}
		liveReqs = append(liveReqs, r)
		liveIdx = append(liveIdx, i)
	}
	if len(liveReqs) > 0 {
		answers := crowd.AskWithContext(ctx, p.live, liveReqs)
		for k, a := range answers {
			out[liveIdx[k]] = a
			p.recorded[a.Q] = a.Pref
			p.recorded[crowd.Question{A: a.Q.B, B: a.Q.A, Attr: a.Q.Attr}] = a.Pref.Flip()
			if err := p.writer.Append(round, liveReqs[k], a.Pref); err != nil {
				// The answer is already paid for; surface the journaling
				// failure loudly rather than silently losing durability.
				panic(err)
			}
		}
	}
	return out
}

// Stats implements crowd.Platform. The returned stats cover the whole
// logical run (replayed + live); the live platform's own Stats cover only
// the questions that cost new money.
func (p *Platform) Stats() *crowd.Stats { return &p.stats }

// Replayed returns how many questions were served from the journal.
func (p *Platform) Replayed() int { return p.replayed }

// LiveStats exposes the wrapped platform's accounting (the new spend).
func (p *Platform) LiveStats() *crowd.Stats { return p.live.Stats() }

package voting

import "fmt"

// ProgressPolicy is an extended worker-assignment policy that also sees how
// far the query has progressed (the fraction of the expected question
// budget already spent, in [0,1]). Section 6.1 tunes DynamicVoting
// positionally — "the initial 30% questions are assigned ω+2, and the last
// 30% questions are assigned ω−2" — because early answers are reused by
// transitivity across many later pruning decisions (and, with
// first-write-wins contradiction handling, an early mistake can block later
// correct answers), while late answers affect a single tuple.
//
// Policies that do not implement ProgressPolicy are consulted through
// Workers alone.
type ProgressPolicy interface {
	Policy
	// WorkersAt returns the worker count for a question asked at the given
	// progress fraction with the given importance freq(u,v).
	WorkersAt(progress float64, freq int) int
}

// Annealed implements the paper's tuned dynamic voting: questions in the
// first HiFrac of the run get Omega+2 workers, questions in the last LoFrac
// get Omega−2, and the middle gets Omega. With HiFrac == LoFrac the
// expected total worker budget matches Static{Omega} when question volume
// is uniform over the run.
type Annealed struct {
	Omega  int
	HiFrac float64 // fraction of the run boosted to Omega+2 (paper: 0.3)
	LoFrac float64 // fraction of the run reduced to Omega−2 (paper: 0.3)
}

// NewAnnealed returns the paper's 30%/30% tuning around omega.
func NewAnnealed(omega int) Annealed {
	return Annealed{Omega: omega, HiFrac: 0.3, LoFrac: 0.3}
}

// WorkersAt implements ProgressPolicy.
func (a Annealed) WorkersAt(progress float64, _ int) int {
	switch {
	case progress < a.HiFrac:
		return a.Omega + 2
	case progress >= 1-a.LoFrac:
		return maxInt(1, a.Omega-2)
	default:
		return a.Omega
	}
}

// Workers implements Policy for callers without progress information; it
// returns the middle assignment.
func (a Annealed) Workers(int) int { return a.Omega }

// String names the policy for experiment output.
func (a Annealed) String() string {
	return fmt.Sprintf("DynamicVoting(ω=%d, first %.0f%% ω+2, last %.0f%% ω-2)",
		a.Omega, a.HiFrac*100, a.LoFrac*100)
}

// AnnealedFreq combines the positional annealing with the freq(u,v)
// importance rule: a question gets the larger of the two assignments, and
// the positional tail reduction only applies to unimportant questions.
// This is the strongest of the Section 5 variants in our evaluation.
type AnnealedFreq struct {
	Annealed
	Freq DynamicAlphaBeta
}

// NewAnnealedFreq builds the combined policy from the paper's 30/30
// positional tuning and α/β frequency thresholds.
func NewAnnealedFreq(omega int, freqs []int) AnnealedFreq {
	return AnnealedFreq{
		Annealed: NewAnnealed(omega),
		Freq:     NewDynamicPercentile(omega, freqs, 0.3, 0.3),
	}
}

// WorkersAt implements ProgressPolicy.
func (af AnnealedFreq) WorkersAt(progress float64, freq int) int {
	pos := af.Annealed.WorkersAt(progress, freq)
	byFreq := af.Freq.Workers(freq)
	if byFreq > pos {
		return byFreq
	}
	return pos
}

// Workers implements Policy.
func (af AnnealedFreq) Workers(freq int) int { return af.Freq.Workers(freq) }

// String names the policy for experiment output.
func (af AnnealedFreq) String() string {
	return fmt.Sprintf("DynamicVoting(ω=%d, positional+freq)", af.Omega)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package voting

import (
	"math"
	"strings"
	"testing"
)

func TestStatic(t *testing.T) {
	p := Static{Omega: 5}
	if p.Workers(0) != 5 || p.Workers(1000) != 5 {
		t.Errorf("static policy varies with frequency")
	}
	if !strings.Contains(p.String(), "5") {
		t.Errorf("String = %q", p.String())
	}
}

func TestDynamicAlphaBeta(t *testing.T) {
	p := DynamicAlphaBeta{Omega: 5, Alpha: 3, Beta: 10}
	if p.Workers(0) != 3 {
		t.Errorf("low-importance workers = %d, want ω-2 = 3", p.Workers(0))
	}
	if p.Workers(3) != 5 || p.Workers(9) != 5 {
		t.Errorf("mid-importance workers wrong")
	}
	if p.Workers(10) != 7 || p.Workers(100) != 7 {
		t.Errorf("high-importance workers wrong")
	}
	// ω−2 never drops below one worker.
	tiny := DynamicAlphaBeta{Omega: 2, Alpha: 5, Beta: 10}
	if tiny.Workers(0) != 1 {
		t.Errorf("worker count fell below 1")
	}
	if !strings.Contains(p.String(), "α=3") {
		t.Errorf("String = %q", p.String())
	}
}

func TestNewDynamicPercentile(t *testing.T) {
	// Frequencies 0..99: bottom 30% → ω−2, top 30% → ω+2.
	freqs := make([]int, 100)
	for i := range freqs {
		freqs[i] = i
	}
	p := NewDynamicPercentile(5, freqs, 0.3, 0.3)
	if p.Workers(0) != 3 {
		t.Errorf("lowest importance got %d workers", p.Workers(0))
	}
	if p.Workers(50) != 5 {
		t.Errorf("median importance got %d workers", p.Workers(50))
	}
	if p.Workers(99) != 7 {
		t.Errorf("highest importance got %d workers", p.Workers(99))
	}
	// Budget neutrality: the expected worker count over the candidate
	// distribution stays within 10% of static ω.
	total := 0
	for _, f := range freqs {
		total += p.Workers(f)
	}
	if total < 450 || total > 550 {
		t.Errorf("dynamic budget = %d workers for 100 questions, want ≈500", total)
	}
}

func TestNewDynamicPercentileDegenerate(t *testing.T) {
	// Empty input → static behavior.
	p := NewDynamicPercentile(5, nil, 0.3, 0.3)
	if p.Workers(0) != 5 || p.Workers(1000) != 5 {
		t.Errorf("empty-distribution policy not static")
	}
	// All-equal frequencies → static behavior (avoid blowing the budget).
	p = NewDynamicPercentile(5, []int{7, 7, 7, 7}, 0.3, 0.3)
	if p.Workers(7) != 5 {
		t.Errorf("uniform-distribution policy assigned %d workers", p.Workers(7))
	}
}

func TestCorrectProbability(t *testing.T) {
	// ω = 1: majority accuracy equals worker accuracy.
	if got := CorrectProbability(1, 0.8); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("P(1, 0.8) = %v", got)
	}
	// ω = 3, p = 0.8: 3C2·0.8²·0.2 + 0.8³ = 0.896.
	if got := CorrectProbability(3, 0.8); math.Abs(got-0.896) > 1e-12 {
		t.Errorf("P(3, 0.8) = %v, want 0.896", got)
	}
	// ω = 5, p = 0.8 ≈ 0.94208.
	if got := CorrectProbability(5, 0.8); math.Abs(got-0.94208) > 1e-5 {
		t.Errorf("P(5, 0.8) = %v, want ≈0.94208", got)
	}
	// More workers help (for p > 0.5).
	if CorrectProbability(7, 0.8) <= CorrectProbability(5, 0.8) {
		t.Errorf("P not monotone in ω")
	}
	// Degenerate ω.
	if CorrectProbability(0, 0.8) != 0 {
		t.Errorf("P(0, ·) != 0")
	}
}

package voting

import "fmt"

// Context carries everything the engine knows about a question's role at
// the moment it is issued, for query-dependent worker assignment
// (Section 5's "importance of questions" made concrete):
//
//   - Progress: fraction of the expected question budget already spent.
//     Early answers are reused by transitivity across many later pruning
//     decisions, so early mistakes propagate furthest.
//   - Freq: the co-domination frequency freq(u,v) of the pair — how many
//     tuples both sides dominate, the paper's importance measure.
//   - Backup: how many further dominators remain to be checked against the
//     same target tuple after this question. A kill-check with backup 0 is
//     the tuple's last line of defense — if it is answered wrong the tuple
//     enters the skyline incorrectly — while a mistake on a question with
//     backup ≥ 1 is usually caught by the next dominator.
type Context struct {
	Progress float64
	Freq     int
	Backup   int
}

// ContextPolicy is the most informed policy interface; the engine prefers
// it over ProgressPolicy and Policy when implemented.
type ContextPolicy interface {
	Policy
	WorkersFor(ctx Context) int
}

// Smart is the context-aware dynamic voting policy: it boosts the
// questions whose errors are most damaging (early in the run, or with high
// co-domination frequency, or the last remaining check of a tuple) and
// funds the boost by reducing workers on questions whose errors are
// recoverable (a later dominator of the same tuple still gets a say).
type Smart struct {
	// Omega is the base (static-equivalent) worker count.
	Omega int
	// EarlyFrac boosts questions in the first fraction of the run.
	EarlyFrac float64
	// BetaFreq boosts questions with freq(u,v) at or above this value.
	BetaFreq int
}

// NewSmart returns a Smart policy with the paper-aligned 30% early boost
// and a frequency threshold (pass the 90th percentile of the candidate
// frequency distribution; see experiments.DynamicPolicy).
func NewSmart(omega, betaFreq int) Smart {
	return Smart{Omega: omega, EarlyFrac: 0.3, BetaFreq: betaFreq}
}

// WorkersFor implements ContextPolicy.
func (s Smart) WorkersFor(ctx Context) int {
	switch {
	case ctx.Progress < s.EarlyFrac || ctx.Freq >= s.BetaFreq:
		return s.Omega + 2
	case ctx.Backup >= 1:
		return maxInt(1, s.Omega-2)
	default:
		return s.Omega
	}
}

// Workers implements Policy for callers without context.
func (s Smart) Workers(freq int) int {
	if freq >= s.BetaFreq {
		return s.Omega + 2
	}
	return s.Omega
}

// String names the policy for experiment output.
func (s Smart) String() string {
	return fmt.Sprintf("SmartVoting(ω=%d, early<%.0f%%, β=%d)", s.Omega, s.EarlyFrac*100, s.BetaFreq)
}

package voting

import (
	"strings"
	"testing"
)

func TestAnnealed(t *testing.T) {
	a := NewAnnealed(5)
	if a.WorkersAt(0.0, 0) != 7 || a.WorkersAt(0.29, 1000) != 7 {
		t.Errorf("early questions not boosted")
	}
	if a.WorkersAt(0.3, 0) != 5 || a.WorkersAt(0.69, 0) != 5 {
		t.Errorf("middle questions not at base ω")
	}
	if a.WorkersAt(0.7, 0) != 3 || a.WorkersAt(1.0, 0) != 3 {
		t.Errorf("late questions not reduced")
	}
	// Progress-free fallback is the base ω.
	if a.Workers(1000) != 5 {
		t.Errorf("Workers fallback = %d, want 5", a.Workers(1000))
	}
	// ω−2 never drops below 1.
	tiny := Annealed{Omega: 2, HiFrac: 0.3, LoFrac: 0.3}
	if tiny.WorkersAt(0.9, 0) != 1 {
		t.Errorf("worker count fell below 1")
	}
	if !strings.Contains(a.String(), "30%") {
		t.Errorf("String = %q", a.String())
	}
}

func TestAnnealedBudgetNeutral(t *testing.T) {
	// Uniform question volume over the run: expected workers equal static ω.
	a := NewAnnealed(5)
	total := 0
	const steps = 1000
	for i := 0; i < steps; i++ {
		total += a.WorkersAt(float64(i)/steps, 0)
	}
	if total != 5*steps {
		t.Errorf("annealed budget = %d workers for %d questions, want exactly %d", total, steps, 5*steps)
	}
}

func TestAnnealedFreq(t *testing.T) {
	freqs := make([]int, 100)
	for i := range freqs {
		freqs[i] = i
	}
	af := NewAnnealedFreq(5, freqs)
	// Early and unimportant: positional boost wins.
	if af.WorkersAt(0.1, 0) != 7 {
		t.Errorf("early boost missing")
	}
	// Late but very important: frequency boost overrides the tail cut.
	if af.WorkersAt(0.9, 99) != 7 {
		t.Errorf("important late question not protected")
	}
	// Late and unimportant: cut.
	if af.WorkersAt(0.9, 0) != 3 {
		t.Errorf("unimportant late question not cut")
	}
	if af.Workers(99) != 7 || af.Workers(50) != 5 {
		t.Errorf("Workers fallback wrong")
	}
	if !strings.Contains(af.String(), "positional+freq") {
		t.Errorf("String = %q", af.String())
	}
}

func TestSmart(t *testing.T) {
	s := NewSmart(5, 100)
	// Early questions boosted regardless of importance.
	if s.WorkersFor(Context{Progress: 0.1, Freq: 0, Backup: 0}) != 7 {
		t.Errorf("early boost missing")
	}
	// High-importance questions boosted at any time.
	if s.WorkersFor(Context{Progress: 0.9, Freq: 200, Backup: 0}) != 7 {
		t.Errorf("importance boost missing")
	}
	// Recoverable checks (backup pending) are discounted.
	if s.WorkersFor(Context{Progress: 0.5, Freq: 0, Backup: 2}) != 3 {
		t.Errorf("recoverable check not discounted")
	}
	// Last-chance mid-run checks stay at base ω.
	if s.WorkersFor(Context{Progress: 0.5, Freq: 0, Backup: 0}) != 5 {
		t.Errorf("last-chance check not at base ω")
	}
	// Early beats backup discount: accuracy early matters most.
	if s.WorkersFor(Context{Progress: 0.1, Freq: 0, Backup: 3}) != 7 {
		t.Errorf("early boost should take precedence over backup discount")
	}
	if s.Workers(200) != 7 || s.Workers(0) != 5 {
		t.Errorf("context-free fallback wrong")
	}
	if !strings.Contains(s.String(), "β=100") {
		t.Errorf("String = %q", s.String())
	}
	// ω−2 floors at 1.
	low := Smart{Omega: 2, EarlyFrac: 0.3, BetaFreq: 1 << 30}
	if low.WorkersFor(Context{Progress: 0.5, Backup: 5}) != 1 {
		t.Errorf("smart worker count fell below 1")
	}
}

// Package voting implements the worker-assignment strategies of Section 5:
// static majority voting, which assigns the same number of workers ω to
// every question, and dynamic majority voting, which grades questions by
// their importance freq(u,v) = |{x : u ≺AK x ∧ v ≺AK x}| and assigns ω+2,
// ω, or ω−2 workers without increasing the total worker budget.
package voting

import (
	"fmt"
	"math"
	"sort"
)

// DefaultOmega is the paper's default worker count per question (ω = 5).
const DefaultOmega = 5

// Policy decides how many workers to assign to a question, given the
// question's importance freq(u,v). Implementations must return an odd,
// positive count so majority voting is well defined.
type Policy interface {
	Workers(freq int) int
}

// Static assigns Omega workers to every question (the StaticVoting method
// of Section 6.1).
type Static struct {
	Omega int
}

// Workers implements Policy.
func (s Static) Workers(int) int { return s.Omega }

// String names the policy for experiment output.
func (s Static) String() string { return fmt.Sprintf("StaticVoting(ω=%d)", s.Omega) }

// DynamicAlphaBeta is the raw dynamic rule of Section 5: given thresholds
// α < β, a question with freq < α gets ω−2 workers, freq in [α, β) gets ω,
// and freq ≥ β gets ω+2.
type DynamicAlphaBeta struct {
	Omega       int
	Alpha, Beta int
}

// Workers implements Policy.
func (d DynamicAlphaBeta) Workers(freq int) int {
	switch {
	case freq >= d.Beta:
		return d.Omega + 2
	case freq >= d.Alpha:
		return d.Omega
	default:
		return max(1, d.Omega-2)
	}
}

// String names the policy for experiment output.
func (d DynamicAlphaBeta) String() string {
	return fmt.Sprintf("DynamicVoting(ω=%d, α=%d, β=%d)", d.Omega, d.Alpha, d.Beta)
}

// NewDynamicPercentile tunes a DynamicAlphaBeta policy the way the paper's
// experiments do (Section 6.1): the top hiFrac of the candidate-question
// importance distribution gets ω+2 workers and the bottom loFrac gets ω−2,
// keeping the expected total worker budget equal to static voting when
// hiFrac == loFrac (the paper uses 30%/30%). freqs is the importance of
// every candidate question; it may be in any order and is not modified.
func NewDynamicPercentile(omega int, freqs []int, loFrac, hiFrac float64) DynamicAlphaBeta {
	if len(freqs) == 0 {
		return DynamicAlphaBeta{Omega: omega, Alpha: 0, Beta: math.MaxInt}
	}
	sorted := append([]int(nil), freqs...)
	sort.Ints(sorted)
	quantile := func(q float64) int {
		idx := int(q * float64(len(sorted)))
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		if idx < 0 {
			idx = 0
		}
		return sorted[idx]
	}
	alpha := quantile(loFrac)
	beta := quantile(1 - hiFrac)
	if beta < alpha {
		beta = alpha
	}
	// Degenerate distributions (all frequencies equal) would otherwise
	// push every question into the ω+2 bucket and blow the budget; fall
	// back to static assignment in that case.
	if alpha == beta && sorted[0] == sorted[len(sorted)-1] {
		return DynamicAlphaBeta{Omega: omega, Alpha: 0, Beta: math.MaxInt}
	}
	return DynamicAlphaBeta{Omega: omega, Alpha: alpha, Beta: beta}
}

// CorrectProbability returns the paper's binomial model of Section 5 for
// the probability that majority voting over ω workers (each independently
// correct with probability p) yields the correct answer:
//
//	P = Σ_{i=⌈ω/2⌉}^{ω} C(ω,i) p^i (1−p)^{ω−i}
//
// ω must be positive; it is typically odd.
func CorrectProbability(omega int, p float64) float64 {
	if omega <= 0 {
		return 0
	}
	total := 0.0
	for i := (omega + 1) / 2; i <= omega; i++ {
		total += binomial(omega, i) * math.Pow(p, float64(i)) * math.Pow(1-p, float64(omega-i))
	}
	return total
}

func binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	res := 1.0
	for i := 1; i <= k; i++ {
		res = res * float64(n-k+i) / float64(i)
	}
	return res
}
